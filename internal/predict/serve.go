package predict

import (
	"fmt"
	"sync"

	"pond/internal/pmu"
)

// Inference serving. The paper's prototype "adds the prediction (the size
// of zNUMA) on the VM request path using a custom inference serving
// system" (§5) — predictions must be fast enough not to delay VM starts.
// Server wraps the two models behind a request-counting, cache-backed
// interface: repeated requests from the same customer within a model
// generation hit a cache, and the serving layer tracks how much simulated
// latency it added to the request path.

// Serving-cost constants (simulated; the real system reports similar
// magnitudes for tree-ensemble inference).
const (
	// ForestInferenceMicros is one RandomForest evaluation.
	ForestInferenceMicros = 120.0
	// GBMInferenceMicros is one GBM evaluation.
	GBMInferenceMicros = 80.0
	// CacheHitMicros is a cache lookup.
	CacheHitMicros = 2.0
)

// Server serves both models with per-customer caching.
type Server struct {
	mu sync.Mutex

	insens Insensitivity
	um     Untouched

	// generation invalidates caches when models are swapped (nightly
	// retrain, §4.4).
	generation int

	sensCache map[int64]cachedScore
	umCache   map[int64]cachedScore

	requests   int64
	cacheHits  int64
	servedCost float64 // accumulated microseconds
}

type cachedScore struct {
	generation int
	value      float64
}

// NewServer wraps the given models.
func NewServer(insens Insensitivity, um Untouched) *Server {
	return &Server{
		insens:    insens,
		um:        um,
		sensCache: make(map[int64]cachedScore),
		umCache:   make(map[int64]cachedScore),
	}
}

// maxCacheEntries bounds each prediction cache. Serving keys can be
// per-decision unique (opaque VMs hash their sampled counters, the
// untouched-memory key hashes the evolving history features), so without
// a bound a long soak run grows the maps with never-hit entries.
const maxCacheEntries = 1 << 16

// Swap installs retrained models and invalidates all cached predictions.
// The caches are dropped outright: every surviving entry would be from a
// stale generation, and rebuilding frees their memory.
func (s *Server) Swap(insens Insensitivity, um Untouched) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insens = insens
	s.um = um
	s.generation++
	s.sensCache = make(map[int64]cachedScore)
	s.umCache = make(map[int64]cachedScore)
}

// Pin installs the models of one distributed release under an explicit,
// caller-owned generation number — the fleet pipeline's staged rollout
// pins each cell's server to the model version its deployment ring
// serves, so canary and control cells run different versions
// concurrently and their caches key on the release, not on a local swap
// counter. Re-pinning the current generation is a no-op that keeps the
// serving cache warm; any other generation installs the models and drops
// every cached prediction.
func (s *Server) Pin(generation int, insens Insensitivity, um Untouched) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if generation == s.generation {
		return
	}
	s.insens = insens
	s.um = um
	s.generation = generation
	s.sensCache = make(map[int64]cachedScore)
	s.umCache = make(map[int64]cachedScore)
}

// Generation returns the serving generation: the release version pinned
// by Pin, or the local swap count under Swap.
func (s *Server) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generation
}

// ScoreInsensitivity serves a latency-insensitivity score for a customer.
// cacheKey should identify the (customer, workload) pair.
func (s *Server) ScoreInsensitivity(cacheKey int64, v pmu.Vector) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.insens == nil {
		return 0, fmt.Errorf("predict: no insensitivity model installed")
	}
	s.requests++
	if c, ok := s.sensCache[cacheKey]; ok && c.generation == s.generation {
		s.cacheHits++
		s.servedCost += CacheHitMicros
		return c.value, nil
	}
	score := s.insens.Score(v)
	if len(s.sensCache) >= maxCacheEntries {
		s.sensCache = make(map[int64]cachedScore)
	}
	s.sensCache[cacheKey] = cachedScore{generation: s.generation, value: score}
	s.servedCost += ForestInferenceMicros
	return score, nil
}

// PredictUntouched serves an untouched-memory fraction.
func (s *Server) PredictUntouched(cacheKey int64, features []float64) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.um == nil {
		return 0, fmt.Errorf("predict: no untouched-memory model installed")
	}
	s.requests++
	if c, ok := s.umCache[cacheKey]; ok && c.generation == s.generation {
		s.cacheHits++
		s.servedCost += CacheHitMicros
		return c.value, nil
	}
	frac := s.um.PredictUntouchedFrac(features)
	if len(s.umCache) >= maxCacheEntries {
		s.umCache = make(map[int64]cachedScore)
	}
	s.umCache[cacheKey] = cachedScore{generation: s.generation, value: frac}
	s.servedCost += GBMInferenceMicros
	return frac, nil
}

// Installed reports which models the server currently serves, without
// touching the request counters or caches.
func (s *Server) Installed() (insens, um bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insens != nil, s.um != nil
}

// Stats reports request counts, cache hit rate, and the mean simulated
// serving latency per request in microseconds.
func (s *Server) Stats() (requests, hits int64, meanMicros float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.requests > 0 {
		meanMicros = s.servedCost / float64(s.requests)
	}
	return s.requests, s.cacheHits, meanMicros
}
