package predict

import (
	"fmt"

	"pond/internal/workload"
)

// Eq. (1) of the paper:
//
//	maximize  (LI_PDM) + (UM)
//	subject to (FP_PDM) + (OP) <= (100 - TP)
//
// Pond picks one operating point on the insensitivity curve (how many VMs
// go fully onto the pool, at what false-positive cost) and one on the
// untouched-memory curve (how much of the remaining VMs' memory goes onto
// the pool, at what overprediction cost), so the total misprediction
// budget stays within the tail target TP.

// Combined is a solved operating point.
type Combined struct {
	Sens SensPoint
	UM   UMPoint

	// PoolFrac is the resulting average fraction of VM memory served
	// from the pool: insensitive VMs contribute their whole memory, the
	// rest contribute their predicted-untouched share.
	PoolFrac float64

	// MispredictFrac is the expected fraction of VMs exceeding the PDM:
	// all false positives, plus overpredicted VMs weighted by the
	// probability that spilling actually breaks the PDM.
	MispredictFrac float64
}

// String renders the choice.
func (c Combined) String() string {
	return fmt.Sprintf("LI=%.0f%% (FP=%.2f%%) UM=%.0f%% (OP=%.2f%%) => pool=%.1f%% mispred=%.2f%%",
		100*c.Sens.InsensitiveFrac, 100*c.Sens.FPRate,
		100*c.UM.AvgUM, 100*c.UM.OPRate,
		100*c.PoolFrac, 100*c.MispredictFrac)
}

// ExceedProbGivenSpill estimates, over the workload catalogue, the
// probability that a workload whose untouched memory was overpredicted by
// a typical margin (spilling spillFrac of its footprint) exceeds the PDM.
// The paper's strawman analysis uses "about 1/4" for PDM=5%.
func ExceedProbGivenSpill(ratio, pdm, spillFrac float64) float64 {
	n, exceed := 0, 0
	for _, w := range workload.Catalogue() {
		n++
		if w.SpillSlowdown(ratio, spillFrac) > pdm {
			exceed++
		}
	}
	return float64(exceed) / float64(n)
}

// TypicalOverpredictionSpill is the spill fraction assumed for an
// overpredicted VM when converting OP into PDM violations: overpredictions
// from a low-quantile model are small, spilling a modest share of the
// footprint.
const TypicalOverpredictionSpill = 0.15

// Optimize solves Eq. (1) by grid search over the two curves. tp is the
// target tail percentage (e.g. 0.98 for 98% of VMs within PDM);
// exceedProb converts overpredictions into expected PDM violations.
// The QoS monitor mitigates up to qosMitigation of mispredictions (§6.4.3
// "Pond uses its QoS monitor to mitigate up to 1% of mispredictions").
func Optimize(sens []SensPoint, um []UMPoint, tp, exceedProb, qosMitigation float64) (Combined, bool) {
	budget := (1 - tp) + qosMitigation
	best := Combined{}
	found := false
	for _, s := range sens {
		for _, u := range um {
			mispredict := s.FPRate + u.OPRate*(1-s.InsensitiveFrac)*exceedProb
			if mispredict > budget {
				continue
			}
			poolFrac := s.InsensitiveFrac + (1-s.InsensitiveFrac)*u.AvgUM
			if !found || poolFrac > best.PoolFrac {
				best = Combined{
					Sens:           s,
					UM:             u,
					PoolFrac:       poolFrac,
					MispredictFrac: mispredict,
				}
				found = true
			}
		}
	}
	return best, found
}

// Frontier sweeps the misprediction budget and returns, for each budget,
// the maximum achievable pool fraction — the Figure 20 curve relating
// average pool DRAM to scheduling mispredictions.
func Frontier(sens []SensPoint, um []UMPoint, exceedProb float64, budgets []float64) []Combined {
	var out []Combined
	for _, b := range budgets {
		if c, ok := Optimize(sens, um, 1-b, exceedProb, 0); ok {
			out = append(out, c)
		}
	}
	return out
}
