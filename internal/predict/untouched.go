package predict

import (
	"sort"

	"pond/internal/cluster"
	"pond/internal/ml"
	"pond/internal/stats"
	"pond/internal/telemetry"
)

// UMFeatureCount is the length of the untouched-memory feature vector.
const UMFeatureCount = 12

// UMFeatures builds the Figure 14 feature vector for a VM request: VM
// shape (memory, cores, ratio), guest OS, region, workload name (hashed;
// zero for opaque VMs), and the customer's trailing untouched-memory
// percentiles.
func UMFeatures(vm cluster.VMRequest, h telemetry.History) []float64 {
	return UMFeaturesInto(make([]float64, 0, UMFeatureCount), vm, h)
}

// UMFeaturesInto appends the feature vector to dst and returns it. The
// fleet event loop passes a reused per-cell buffer so feature assembly
// allocates nothing; every consumer of the vector (the pipeline, the
// serving cache keys, the mlops shadow hooks) either reads it
// synchronously or copies it.
func UMFeaturesInto(dst []float64, vm cluster.VMRequest, h telemetry.History) []float64 {
	return append(dst,
		vm.Type.MemoryGB,
		float64(vm.Type.Cores),
		vm.Type.GBPerCore(),
		hashCode(vm.OS, 16),
		hashCode(vm.Region, 16),
		hashCode(vm.WorkloadName, 64),
		float64(h.Count),
		h.P0,
		h.P25,
		h.P50,
		h.P75,
		h.P100,
	)
}

// hashCode maps a string to a stable small numeric code; empty strings
// map to zero so "unknown" is its own value. The FNV-1a fold is inlined
// (identical to hash/fnv's 32-bit variant) to keep it allocation-free.
func hashCode(s string, buckets uint32) float64 {
	if s == "" {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return float64(1 + h%buckets)
}

// Untouched predicts the fraction of a VM's memory that will never be
// touched; Pond backs that fraction with pool DRAM behind a zNUMA node.
type Untouched interface {
	PredictUntouchedFrac(features []float64) float64
	Name() string
}

// GBMUntouched is the paper's quantile-GBM model (§5): it predicts a low
// conditional quantile of untouched memory, so the true amount exceeds
// the prediction for most VMs and only the target overprediction rate
// spills.
type GBMUntouched struct {
	model *ml.GBM
	// Margin shifts predictions down; sweeping it trades average
	// untouched memory against overpredictions (Figure 18's curve).
	Margin float64
}

// TrainGBMUntouched fits the model at the given target quantile.
func TrainGBMUntouched(X [][]float64, y []float64, quantile float64, seed int64) *GBMUntouched {
	cfg := ml.DefaultGBMConfig()
	cfg.Quantile = quantile
	cfg.Seed = seed
	return &GBMUntouched{model: ml.FitGBM(X, y, cfg)}
}

// PredictUntouchedFrac returns the clamped quantile prediction.
func (m *GBMUntouched) PredictUntouchedFrac(features []float64) float64 {
	return stats.Clamp(m.model.Predict(features)-m.Margin, 0, 1)
}

// Name identifies the model.
func (m *GBMUntouched) Name() string { return "GBM" }

// GBM exposes the underlying ensemble for serialization (ml/serialize).
func (m *GBMUntouched) GBM() *ml.GBM { return m.model }

// WrapGBMUntouched adopts a deserialized ensemble (e.g. one rebuilt from
// a versioned mlops snapshot) as an untouched-memory model.
func WrapGBMUntouched(g *ml.GBM) *GBMUntouched { return &GBMUntouched{model: g} }

// WithMargin returns a copy with the given safety margin.
func (m *GBMUntouched) WithMargin(margin float64) *GBMUntouched {
	return &GBMUntouched{model: m.model, Margin: margin}
}

// FixedUntouched is the Figure 18 strawman: assume the same untouched
// fraction for every VM.
type FixedUntouched struct {
	Frac float64
}

// PredictUntouchedFrac returns the fixed fraction.
func (m FixedUntouched) PredictUntouchedFrac([]float64) float64 { return m.Frac }

// Name identifies the strawman.
func (m FixedUntouched) Name() string { return "Fixed" }

// UMPoint is one achievable operating point of an untouched-memory model:
// predicting AvgUM of memory as untouched (GB-weighted fraction) at the
// cost of OPRate overpredicted VMs — Figure 18's axes.
type UMPoint struct {
	AvgUM  float64
	OPRate float64
}

// UMEval holds a labeled evaluation set for untouched-memory models.
type UMEval struct {
	X [][]float64
	// TrueUntouched is the ground-truth untouched fraction per VM.
	TrueUntouched []float64
	// MemGB weights the average by VM size.
	MemGB []float64
}

// Evaluate computes the operating point of a model on the set, with
// GB-aligned rounding down, as the scheduler allocates whole-GB zNUMA
// nodes (§4.4).
func (e UMEval) Evaluate(m Untouched) UMPoint {
	if len(e.X) == 0 {
		return UMPoint{}
	}
	var umGB, totalGB float64
	over := 0
	for i := range e.X {
		pred := m.PredictUntouchedFrac(e.X[i])
		predGB := alignDownGB(pred * e.MemGB[i])
		if predGB > e.TrueUntouched[i]*e.MemGB[i] {
			over++
		}
		umGB += predGB
		totalGB += e.MemGB[i]
	}
	return UMPoint{
		AvgUM:  umGB / totalGB,
		OPRate: float64(over) / float64(len(e.X)),
	}
}

// Curve sweeps the model's safety margin to produce the Figure 18
// tradeoff curve, sorted by AvgUM.
func (e UMEval) Curve(m *GBMUntouched, margins []float64) []UMPoint {
	out := make([]UMPoint, 0, len(margins))
	for _, margin := range margins {
		out = append(out, e.Evaluate(m.WithMargin(margin)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AvgUM < out[j].AvgUM })
	return out
}

// FixedCurve sweeps the strawman's fixed fraction for the same figure.
func (e UMEval) FixedCurve(fracs []float64) []UMPoint {
	out := make([]UMPoint, 0, len(fracs))
	for _, f := range fracs {
		out = append(out, e.Evaluate(FixedUntouched{Frac: f}))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AvgUM < out[j].AvgUM })
	return out
}

// alignDownGB rounds an allocation down to whole GB (1 GB slices).
func alignDownGB(gb float64) float64 {
	return float64(int(gb))
}

// DefaultMargins is the margin grid used for curve construction.
func DefaultMargins() []float64 {
	return []float64{-0.15, -0.10, -0.05, 0, 0.03, 0.06, 0.10, 0.15, 0.20, 0.30, 0.40}
}

// HistoryQuantileUM is the online stand-in for a fleet-trained GBM used
// by the live facades (pond.System, the fleet simulator): the customer's
// trailing P25 untouched fraction with a 0.9 safety factor, zero without
// at least three completed VMs of history. Feature indices follow
// UMFeatures (6 = history count, 8 = P25 untouched).
type HistoryQuantileUM struct{}

// PredictUntouchedFrac returns the discounted history quantile.
func (HistoryQuantileUM) PredictUntouchedFrac(features []float64) float64 {
	if len(features) < 9 || features[6] < 3 {
		return 0
	}
	return features[8] * 0.9
}

// Name identifies the heuristic.
func (HistoryQuantileUM) Name() string { return "history-quantile" }
