// Package predict implements Pond's two prediction models (§4.4,
// Figures 12-14) and the combined optimizer of Eq. (1):
//
//   - The latency-insensitivity model: a RandomForest over core-PMU
//     counters that decides whether a VM's workload would stay within the
//     performance degradation margin (PDM) if placed entirely on pool
//     DRAM. Single-counter thresholds (memory-bound, DRAM-bound) serve as
//     the comparison heuristics of Figure 17.
//
//   - The untouched-memory model: a quantile GBM over VM metadata and
//     customer history that predicts how much of a VM's memory will never
//     be touched. A fixed-fraction strawman is the Figure 18 baseline.
//
//   - The combined optimizer that balances the two models' error budgets
//     (false positives FP and overpredictions OP) against the target
//     percentage of VMs (TP) that must meet the PDM.
package predict

import (
	"fmt"
	"sort"

	"pond/internal/ml"
	"pond/internal/pmu"
	"pond/internal/stats"
	"pond/internal/workload"
)

// Insensitivity scores how likely a workload is to be latency-insensitive
// from its PMU counters; higher means safer to place on pool DRAM.
type Insensitivity interface {
	Score(v pmu.Vector) float64
	Name() string
}

// SensitivityDataset is the Figure 12 training corpus: PMU counter
// samples from offline test runs labeled with the measured slowdown under
// pool memory at the given latency ratio.
type SensitivityDataset struct {
	X [][]float64
	// Insensitive is 1 when the workload's all-pool slowdown is within
	// the PDM, else 0.
	Insensitive []float64
	// Sensitive is the boolean ground truth (true = exceeds PDM).
	Sensitive []bool
	// WorkloadIdx maps each sample to its catalogue index, for
	// leakage-free workload-level splits.
	WorkloadIdx []int
}

// BuildSensitivityDataset samples each catalogue workload's counters k
// times and labels them against the PDM (a fraction, e.g. 0.05) at the
// given latency ratio.
func BuildSensitivityDataset(ratio, pdm float64, samplesPerWorkload int, seed int64) SensitivityDataset {
	if samplesPerWorkload <= 0 {
		samplesPerWorkload = 3
	}
	r := stats.NewRand(seed)
	var ds SensitivityDataset
	for wi, w := range workload.Catalogue() {
		sensitive := w.Slowdown(ratio, 1) > pdm
		label := 1.0
		if sensitive {
			label = 0
		}
		for k := 0; k < samplesPerWorkload; k++ {
			v := pmu.Sample(w, r)
			ds.X = append(ds.X, v.Features())
			ds.Insensitive = append(ds.Insensitive, label)
			ds.Sensitive = append(ds.Sensitive, sensitive)
			ds.WorkloadIdx = append(ds.WorkloadIdx, wi)
		}
	}
	return ds
}

// ForestModel is the paper's RandomForest classifier (§5).
type ForestModel struct {
	forest *ml.Forest
}

// TrainForest fits the insensitivity forest on a dataset subset.
func TrainForest(X [][]float64, insensitive []float64, seed int64) *ForestModel {
	cfg := ml.DefaultForestConfig()
	cfg.Seed = seed
	return &ForestModel{forest: ml.FitForest(X, insensitive, cfg)}
}

// Score returns the forest's insensitivity probability.
func (m *ForestModel) Score(v pmu.Vector) float64 { return m.forest.PredictProb(v.Features()) }

// Name identifies the model in figures.
func (m *ForestModel) Name() string { return "RandomForest" }

// Forest exposes the underlying ensemble for serialization
// (ml/serialize).
func (m *ForestModel) Forest() *ml.Forest { return m.forest }

// CounterThreshold is the heuristic baseline: label a workload
// insensitive when a single TMA counter is low. Score is 1-counter so
// that higher means more insensitive, like the forest.
type CounterThreshold struct {
	Counter int
}

// Score returns 1 - the counter value.
func (m CounterThreshold) Score(v pmu.Vector) float64 { return 1 - v[m.Counter] }

// Name identifies the heuristic by its counter.
func (m CounterThreshold) Name() string {
	switch m.Counter {
	case pmu.MemoryBound:
		return "Memory-Bound"
	case pmu.DRAMBound:
		return "DRAM-Bound"
	default:
		return fmt.Sprintf("Counter-%d", m.Counter)
	}
}

// SensPoint is one achievable operating point of an insensitivity model:
// labeling InsensitiveFrac of workloads insensitive costs FPRate false
// positives (both as fractions of all workloads) — Figure 17's axes.
type SensPoint struct {
	InsensitiveFrac float64
	FPRate          float64
}

// SensitivityCurve evaluates a model family across folds of
// workload-level train/test splits and returns the mean FP rate at each
// target labeled-insensitive fraction. This is the Figure 17 procedure:
// "100-fold validation based on randomly splitting into equal-sized
// training and testing datasets."
func SensitivityCurve(kind ModelKind, ratio, pdm float64, folds, samplesPerWorkload int, seed int64) []SensPoint {
	ds := BuildSensitivityDataset(ratio, pdm, samplesPerWorkload, seed)
	nWorkloads := maxIntSlice(ds.WorkloadIdx) + 1
	root := stats.NewRand(seed + 1000)

	targets := liTargets()
	sumFP := make([]float64, len(targets))
	for fold := 0; fold < folds; fold++ {
		r := root.Fork(int64(fold + 1))
		trainW, testW := ml.SplitIndices(nWorkloads, 0.5, r)
		trainSet := indexSet(trainW)
		testSet := indexSet(testW)

		var trX [][]float64
		var trY []float64
		var teScores []float64
		var teTruth []bool
		// Gather training rows first so the model never sees test
		// workloads.
		for i := range ds.X {
			if trainSet[ds.WorkloadIdx[i]] {
				trX = append(trX, ds.X[i])
				trY = append(trY, ds.Insensitive[i])
			}
		}
		model := buildModel(kind, trX, trY, seed+int64(fold))
		for i := range ds.X {
			if testSet[ds.WorkloadIdx[i]] {
				var v pmu.Vector
				copy(v[:], ds.X[i])
				teScores = append(teScores, model.Score(v))
				teTruth = append(teTruth, ds.Sensitive[i])
			}
		}
		for ti, target := range targets {
			sumFP[ti] += fpAtLabelRate(teScores, teTruth, target)
		}
	}
	out := make([]SensPoint, len(targets))
	for i, target := range targets {
		out[i] = SensPoint{InsensitiveFrac: target, FPRate: sumFP[i] / float64(folds)}
	}
	return out
}

// ModelKind selects the insensitivity model family for curve evaluation.
type ModelKind int

// Model families of Figure 17, plus a linear baseline.
const (
	KindRandomForest ModelKind = iota
	KindMemoryBound
	KindDRAMBound
	KindLogistic
)

// String names the model kind.
func (k ModelKind) String() string {
	switch k {
	case KindRandomForest:
		return "RandomForest"
	case KindMemoryBound:
		return "Memory-Bound"
	case KindDRAMBound:
		return "DRAM-Bound"
	case KindLogistic:
		return "Logistic"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

func buildModel(kind ModelKind, X [][]float64, y []float64, seed int64) Insensitivity {
	switch kind {
	case KindMemoryBound:
		return CounterThreshold{Counter: pmu.MemoryBound}
	case KindDRAMBound:
		return CounterThreshold{Counter: pmu.DRAMBound}
	case KindLogistic:
		cfg := ml.DefaultLogisticConfig()
		cfg.Seed = seed
		return &LogisticModel{model: ml.FitLogistic(X, y, cfg)}
	default:
		return TrainForest(X, y, seed)
	}
}

// LogisticModel is the linear baseline over the full counter set: better
// than single-counter thresholds, but its linear decision surface cannot
// isolate the store-bound deceivers the way the forest can.
type LogisticModel struct {
	model *ml.Logistic
}

// Score returns the model's insensitivity probability.
func (m *LogisticModel) Score(v pmu.Vector) float64 { return m.model.PredictProb(v.Features()) }

// Name identifies the baseline.
func (m *LogisticModel) Name() string { return "Logistic" }

// liTargets is the labeled-insensitive grid of Figure 17's x-axis.
func liTargets() []float64 {
	return []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60}
}

// fpAtLabelRate finds the score threshold that labels the target fraction
// insensitive and returns the resulting FP rate (sensitive workloads
// among those labeled, over all samples).
func fpAtLabelRate(scores []float64, sensitive []bool, target float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	// Threshold at the (1-target) quantile: everything above is labeled.
	thr := stats.QuantileSorted(sorted, 1-target)
	fp := 0
	for i, s := range scores {
		if s >= thr && sensitive[i] {
			fp++
		}
	}
	return float64(fp) / float64(len(scores))
}

// DatasetScores applies a model to every sample of the dataset.
func DatasetScores(m Insensitivity, ds SensitivityDataset) []float64 {
	out := make([]float64, len(ds.X))
	for i := range ds.X {
		var v pmu.Vector
		copy(v[:], ds.X[i])
		out[i] = m.Score(v)
	}
	return out
}

// ThresholdForLabelRate returns the score threshold that labels the
// target fraction of samples insensitive; the control plane uses it to
// realize the operating point the Eq. (1) optimizer picked.
func ThresholdForLabelRate(scores []float64, target float64) float64 {
	if len(scores) == 0 {
		return 1
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	return stats.QuantileSorted(sorted, 1-stats.Clamp(target, 0, 1))
}

func indexSet(idx []int) map[int]bool {
	m := make(map[int]bool, len(idx))
	for _, i := range idx {
		m[i] = true
	}
	return m
}

func maxIntSlice(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
