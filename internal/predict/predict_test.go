package predict

import (
	"math"
	"sync"
	"testing"

	"pond/internal/cluster"
	"pond/internal/pmu"
	"pond/internal/telemetry"
	"pond/internal/workload"
)

func TestBuildSensitivityDatasetShape(t *testing.T) {
	ds := BuildSensitivityDataset(workload.Ratio182, 0.05, 3, 1)
	if got := len(ds.X); got != 158*3 {
		t.Fatalf("samples = %d, want %d", got, 158*3)
	}
	if len(ds.Insensitive) != len(ds.X) || len(ds.Sensitive) != len(ds.X) || len(ds.WorkloadIdx) != len(ds.X) {
		t.Fatal("parallel arrays out of sync")
	}
	for i := range ds.X {
		if (ds.Insensitive[i] == 1) == ds.Sensitive[i] {
			t.Fatalf("label %d inconsistent: insensitive=%v sensitive=%v",
				i, ds.Insensitive[i], ds.Sensitive[i])
		}
	}
}

func TestSensitivityDatasetLabelBalance(t *testing.T) {
	// At PDM=5%/182%, ~43% of workloads are insensitive (Figure 4).
	ds := BuildSensitivityDataset(workload.Ratio182, 0.05, 1, 1)
	pos := 0
	for _, l := range ds.Insensitive {
		if l == 1 {
			pos++
		}
	}
	frac := float64(pos) / float64(len(ds.Insensitive))
	if math.Abs(frac-0.43) > 0.06 {
		t.Fatalf("insensitive fraction = %v, want ~0.43", frac)
	}
}

func TestForestModelSeparates(t *testing.T) {
	ds := BuildSensitivityDataset(workload.Ratio182, 0.05, 3, 2)
	m := TrainForest(ds.X, ds.Insensitive, 7)
	// Training-set scores must separate classes on average.
	var insMean, sensMean float64
	var insN, sensN int
	for i := range ds.X {
		var v pmu.Vector
		copy(v[:], ds.X[i])
		s := m.Score(v)
		if ds.Sensitive[i] {
			sensMean += s
			sensN++
		} else {
			insMean += s
			insN++
		}
	}
	insMean /= float64(insN)
	sensMean /= float64(sensN)
	if insMean < sensMean+0.3 {
		t.Fatalf("forest does not separate: insensitive %.2f vs sensitive %.2f", insMean, sensMean)
	}
}

func TestCounterThresholdNames(t *testing.T) {
	if (CounterThreshold{Counter: pmu.MemoryBound}).Name() != "Memory-Bound" {
		t.Fatal("memory-bound name")
	}
	if (CounterThreshold{Counter: pmu.DRAMBound}).Name() != "DRAM-Bound" {
		t.Fatal("dram-bound name")
	}
	if (CounterThreshold{Counter: 42}).Name() != "Counter-42" {
		t.Fatal("generic name")
	}
}

func TestSensitivityCurveMonotoneFP(t *testing.T) {
	// More labeled insensitive => FP rate cannot systematically fall.
	curve := SensitivityCurve(KindDRAMBound, workload.Ratio182, 0.05, 4, 2, 3)
	if len(curve) < 5 {
		t.Fatalf("curve too short: %d", len(curve))
	}
	first, last := curve[0], curve[len(curve)-1]
	if last.FPRate < first.FPRate {
		t.Fatalf("FP rate fell from %.3f to %.3f as LI grew", first.FPRate, last.FPRate)
	}
}

func TestFigure17ForestBeatsMemoryBound(t *testing.T) {
	// Figure 17: RandomForest <= DRAM-bound <= Memory-bound (FP at
	// matched label rates). Compare mean FP over the grid.
	folds, samples := 6, 2
	rf := SensitivityCurve(KindRandomForest, workload.Ratio182, 0.05, folds, samples, 5)
	mb := SensitivityCurve(KindMemoryBound, workload.Ratio182, 0.05, folds, samples, 5)
	db := SensitivityCurve(KindDRAMBound, workload.Ratio182, 0.05, folds, samples, 5)
	mean := func(pts []SensPoint) float64 {
		var s float64
		for _, p := range pts {
			s += p.FPRate
		}
		return s / float64(len(pts))
	}
	if mean(rf) > mean(db) {
		t.Fatalf("RandomForest FP %.4f worse than DRAM-bound %.4f", mean(rf), mean(db))
	}
	if mean(db) > mean(mb) {
		t.Fatalf("DRAM-bound FP %.4f worse than Memory-bound %.4f", mean(db), mean(mb))
	}
}

func TestFigure17OperatingPoint(t *testing.T) {
	// "Our RandomForest can place 30% of workloads on the pool with
	// only 2% of false positives" (Finding 5 implication).
	curve := SensitivityCurve(KindRandomForest, workload.Ratio182, 0.05, 6, 2, 6)
	for _, p := range curve {
		if p.InsensitiveFrac >= 0.295 && p.InsensitiveFrac <= 0.305 {
			if p.FPRate > 0.05 {
				t.Fatalf("FP at 30%% insensitive = %.3f, want <= 0.05", p.FPRate)
			}
			return
		}
	}
	t.Fatal("30% operating point missing from curve")
}

func TestUMFeaturesShape(t *testing.T) {
	vm := cluster.VMRequest{
		Type:         cluster.VMType{Name: "D4s", Cores: 4, MemoryGB: 16},
		OS:           "linux",
		Region:       "eu-west",
		WorkloadName: "redis-ycsb-a",
	}
	h := telemetry.History{Count: 5, P0: 0.1, P25: 0.2, P50: 0.3, P75: 0.4, P100: 0.5}
	f := UMFeatures(vm, h)
	if len(f) != UMFeatureCount {
		t.Fatalf("features = %d, want %d", len(f), UMFeatureCount)
	}
	if f[0] != 16 || f[1] != 4 || f[2] != 4 {
		t.Fatalf("shape features wrong: %v", f[:3])
	}
	if f[7] != 0.1 || f[11] != 0.5 {
		t.Fatalf("history features wrong: %v", f[7:])
	}
}

func TestHashCodeStableAndDistinct(t *testing.T) {
	if hashCode("", 16) != 0 {
		t.Fatal("empty string must map to 0")
	}
	if hashCode("linux", 16) != hashCode("linux", 16) {
		t.Fatal("hash not stable")
	}
	if hashCode("linux", 16) == hashCode("windows", 16) {
		t.Skip("hash collision; acceptable but unexpected")
	}
}

func smallTraces() []cluster.Trace {
	cfg := cluster.DefaultGenConfig()
	cfg.Clusters = 4
	cfg.Days = 30
	cfg.ServersPerCluster = 8
	return cluster.Generate(cfg)
}

func TestBuildUMDatasetCausal(t *testing.T) {
	ds := BuildUMDataset(smallTraces())
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
	// Arrivals must be sorted.
	for i := 1; i < ds.Len(); i++ {
		if ds.ArrivalSec[i] < ds.ArrivalSec[i-1] {
			t.Fatal("dataset not in arrival order")
		}
	}
	// Early VMs must have no history.
	if ds.X[0][6] != 0 {
		t.Fatalf("first VM has history count %v", ds.X[0][6])
	}
}

func TestSplitAtDay(t *testing.T) {
	ds := BuildUMDataset(smallTraces())
	cut := ds.SplitAtDay(15)
	if cut <= 0 || cut >= ds.Len() {
		t.Fatalf("cut = %d of %d", cut, ds.Len())
	}
	if ds.ArrivalSec[cut-1] >= 15*86400 || ds.ArrivalSec[cut] < 15*86400 {
		t.Fatal("split boundary wrong")
	}
}

func TestGBMUntouchedBeatsFixed(t *testing.T) {
	// Figure 18: at matched average untouched memory, the GBM's
	// overprediction rate is several times lower than the strawman's.
	ds := BuildUMDataset(smallTraces())
	cut := ds.SplitAtDay(20)
	m := TrainGBMUntouched(ds.X[:cut], ds.TrueUntouched[:cut], 0.05, 1)
	eval := ds.Eval(cut, ds.Len())

	gbmCurve := eval.Curve(m, DefaultMargins())
	fixedCurve := eval.FixedCurve([]float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5})

	// Compare OP at ~20% average untouched memory.
	opAt := func(pts []UMPoint, target float64) float64 {
		best, bestDist := 1.0, 1e9
		for _, p := range pts {
			d := math.Abs(p.AvgUM - target)
			if d < bestDist {
				bestDist = d
				best = p.OPRate
			}
		}
		return best
	}
	gbmOP := opAt(gbmCurve, 0.20)
	fixedOP := opAt(fixedCurve, 0.20)
	if gbmOP >= fixedOP {
		t.Fatalf("GBM OP %.3f not below fixed OP %.3f at 20%% UM", gbmOP, fixedOP)
	}
	if fixedOP/math.Max(gbmOP, 0.005) < 2 {
		t.Fatalf("GBM advantage only %.1fx, want >= 2x (paper: ~5x)", fixedOP/math.Max(gbmOP, 0.005))
	}
}

func TestUMCurveTradeoffDirection(t *testing.T) {
	ds := BuildUMDataset(smallTraces())
	cut := ds.SplitAtDay(20)
	m := TrainGBMUntouched(ds.X[:cut], ds.TrueUntouched[:cut], 0.05, 1)
	curve := ds.Eval(cut, ds.Len()).Curve(m, DefaultMargins())
	if len(curve) < 3 {
		t.Fatalf("curve too short")
	}
	// Higher average UM must come with higher (or equal) OP.
	if curve[0].OPRate > curve[len(curve)-1].OPRate {
		t.Fatalf("curve not monotone: %v .. %v", curve[0], curve[len(curve)-1])
	}
}

func TestFixedUntouchedBehaviour(t *testing.T) {
	m := FixedUntouched{Frac: 0.3}
	if m.PredictUntouchedFrac(nil) != 0.3 || m.Name() != "Fixed" {
		t.Fatal("fixed model broken")
	}
}

func TestGBMUntouchedClamps(t *testing.T) {
	ds := BuildUMDataset(smallTraces())
	cut := ds.SplitAtDay(20)
	m := TrainGBMUntouched(ds.X[:cut], ds.TrueUntouched[:cut], 0.05, 1)
	big := m.WithMargin(10) // predictions - 10 must clamp to 0
	for i := cut; i < cut+50 && i < ds.Len(); i++ {
		if p := big.PredictUntouchedFrac(ds.X[i]); p != 0 {
			t.Fatalf("margin-10 prediction = %v, want clamp to 0", p)
		}
	}
}

func TestExceedProbGivenSpill(t *testing.T) {
	p := ExceedProbGivenSpill(workload.Ratio182, 0.05, TypicalOverpredictionSpill)
	// The paper's back-of-envelope: about 1/4 of spilling workloads
	// break a 5% PDM.
	if p < 0.1 || p > 0.5 {
		t.Fatalf("exceed probability = %v, want ~0.25", p)
	}
}

func TestOptimizeRespectsBudget(t *testing.T) {
	sens := []SensPoint{{0.1, 0.001}, {0.3, 0.02}, {0.5, 0.08}}
	um := []UMPoint{{0.1, 0.01}, {0.25, 0.04}, {0.4, 0.15}}
	c, ok := Optimize(sens, um, 0.98, 0.25, 0.01)
	if !ok {
		t.Fatal("no feasible point")
	}
	if c.MispredictFrac > 0.03+1e-9 {
		t.Fatalf("budget exceeded: %v", c.MispredictFrac)
	}
	if c.PoolFrac <= 0 {
		t.Fatal("empty solution")
	}
}

func TestOptimizePicksMaxPool(t *testing.T) {
	sens := []SensPoint{{0.1, 0.0}, {0.4, 0.0}}
	um := []UMPoint{{0.1, 0.0}, {0.3, 0.0}}
	c, ok := Optimize(sens, um, 0.98, 0.25, 0)
	if !ok {
		t.Fatal("no feasible point")
	}
	want := 0.4 + 0.6*0.3
	if math.Abs(c.PoolFrac-want) > 1e-9 {
		t.Fatalf("pool frac = %v, want %v", c.PoolFrac, want)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	sens := []SensPoint{{0.5, 0.5}}
	um := []UMPoint{{0.3, 0.5}}
	if _, ok := Optimize(sens, um, 0.999, 1.0, 0); ok {
		t.Fatal("infeasible problem solved")
	}
}

func TestFrontierGrowsWithBudget(t *testing.T) {
	sens := []SensPoint{{0.1, 0.001}, {0.3, 0.02}, {0.5, 0.08}}
	um := []UMPoint{{0.1, 0.01}, {0.25, 0.04}, {0.4, 0.15}}
	frontier := Frontier(sens, um, 0.25, []float64{0.01, 0.05, 0.2})
	if len(frontier) < 2 {
		t.Fatalf("frontier size = %d", len(frontier))
	}
	for i := 1; i < len(frontier); i++ {
		if frontier[i].PoolFrac < frontier[i-1].PoolFrac {
			t.Fatal("pool fraction fell as budget grew")
		}
	}
}

func TestModelKindString(t *testing.T) {
	if KindRandomForest.String() != "RandomForest" ||
		KindMemoryBound.String() != "Memory-Bound" ||
		KindDRAMBound.String() != "DRAM-Bound" {
		t.Fatal("model kind names wrong")
	}
}

func TestCombinedString(t *testing.T) {
	c := Combined{Sens: SensPoint{0.3, 0.02}, UM: UMPoint{0.25, 0.04}, PoolFrac: 0.475, MispredictFrac: 0.027}
	if c.String() == "" {
		t.Fatal("empty string")
	}
}

func TestTopCountersAreTMAFamily(t *testing.T) {
	// Figure 12's design claim: the model's signal lives in the TMA
	// memory-hierarchy counters, not the 190 generic events.
	ds := BuildSensitivityDataset(workload.Ratio182, 0.05, 3, 11)
	m := TrainForest(ds.X, ds.Insensitive, 11)
	top := TopCounters(m, ds, 5, 1)
	if len(top) != 5 {
		t.Fatalf("top counters = %d", len(top))
	}
	informative := map[int]bool{
		pmu.BackendBound: true, pmu.MemoryBound: true, pmu.DRAMBound: true,
		pmu.StoreBound: true, pmu.LLCMPI: true, pmu.BandwidthGBps: true,
		pmu.MemParallelism: true, pmu.IPC: true, pmu.Retiring: true,
	}
	hits := 0
	for _, c := range top[:3] {
		if informative[c.Index] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("top-3 counters mostly generic noise: %+v", top)
	}
}

func TestLogisticBaselineLosesToForest(t *testing.T) {
	// The linear baseline over all 200 counters is instructive in how
	// it fails: with ~190 noise features and a few hundred training
	// rows, it cannot match the forest (whose per-split feature
	// subsampling suppresses the noise), and it does not reliably beat
	// the domain-chosen DRAM-bound threshold either. The paper's choice
	// of a RandomForest is not incidental.
	folds, samples := 4, 2
	lr := SensitivityCurve(KindLogistic, workload.Ratio182, 0.05, folds, samples, 15)
	rf := SensitivityCurve(KindRandomForest, workload.Ratio182, 0.05, folds, samples, 15)
	mean := func(pts []SensPoint) float64 {
		var s float64
		for _, p := range pts {
			s += p.FPRate
		}
		return s / float64(len(pts))
	}
	if mean(rf) > mean(lr)+0.005 {
		t.Fatalf("forest FP %.4f worse than logistic %.4f", mean(rf), mean(lr))
	}
	if (&LogisticModel{}).Name() != "Logistic" || KindLogistic.String() != "Logistic" {
		t.Fatal("naming wrong")
	}
}

func TestServerCachesWithinGeneration(t *testing.T) {
	srv := NewServer(CounterThreshold{Counter: pmu.DRAMBound}, FixedUntouched{Frac: 0.3})
	var v pmu.Vector
	v[pmu.DRAMBound] = 0.4

	s1, err := srv.ScoreInsensitivity(7, v)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := srv.ScoreInsensitivity(7, v)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("cache returned a different score")
	}
	requests, hits, mean := srv.Stats()
	if requests != 2 || hits != 1 {
		t.Fatalf("requests=%d hits=%d", requests, hits)
	}
	if mean <= 0 {
		t.Fatal("no serving cost recorded")
	}
}

func TestServerSwapInvalidatesCache(t *testing.T) {
	srv := NewServer(CounterThreshold{Counter: pmu.DRAMBound}, FixedUntouched{Frac: 0.3})
	var v pmu.Vector
	v[pmu.DRAMBound] = 0.4
	if _, err := srv.ScoreInsensitivity(7, v); err != nil {
		t.Fatal(err)
	}
	// Swap to a model that scores differently.
	srv.Swap(CounterThreshold{Counter: pmu.MemoryBound}, FixedUntouched{Frac: 0.1})
	v[pmu.MemoryBound] = 0.9
	s, err := srv.ScoreInsensitivity(7, v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.1) > 1e-9 {
		t.Fatalf("stale cache served after swap: %v", s)
	}
	um, err := srv.PredictUntouched(7, nil)
	if err != nil || um != 0.1 {
		t.Fatalf("um = %v, %v", um, err)
	}
}

func TestServerWithoutModels(t *testing.T) {
	srv := NewServer(nil, nil)
	if _, err := srv.ScoreInsensitivity(1, pmu.Vector{}); err == nil {
		t.Fatal("nil insensitivity model served")
	}
	if _, err := srv.PredictUntouched(1, nil); err == nil {
		t.Fatal("nil um model served")
	}
}

func TestServerUMCache(t *testing.T) {
	srv := NewServer(nil, FixedUntouched{Frac: 0.25})
	a, _ := srv.PredictUntouched(3, nil)
	b, _ := srv.PredictUntouched(3, nil)
	if a != b || a != 0.25 {
		t.Fatalf("um caching wrong: %v %v", a, b)
	}
	requests, hits, _ := srv.Stats()
	if requests != 2 || hits != 1 {
		t.Fatalf("requests=%d hits=%d", requests, hits)
	}
}

// TestServerConcurrentScoringDuringSwap hammers both inference paths
// while another goroutine hot-swaps models, as the mlops lifecycle does
// mid-run. Run under -race this is the serving-layer swap stress test.
func TestServerConcurrentScoringDuringSwap(t *testing.T) {
	srv := NewServer(CounterThreshold{Counter: pmu.DRAMBound}, FixedUntouched{Frac: 0.3})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var v pmu.Vector
			v[pmu.DRAMBound] = 0.4
			for i := 0; i < 500; i++ {
				key := int64(g*1000 + i%7)
				if _, err := srv.ScoreInsensitivity(key, v); err != nil {
					t.Error(err)
					return
				}
				if _, err := srv.PredictUntouched(key, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	swapperDone := make(chan struct{})
	go func() {
		defer close(swapperDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srv.Swap(CounterThreshold{Counter: pmu.MemoryBound}, FixedUntouched{Frac: float64(i%10) / 10})
		}
	}()
	wg.Wait()
	close(stop)
	<-swapperDone
	requests, hits, _ := srv.Stats()
	if requests == 0 {
		t.Fatal("no requests served")
	}
	if hits >= requests {
		t.Fatalf("cache hits %d >= requests %d", hits, requests)
	}
}
