package predict

import (
	"sort"

	"pond/internal/cluster"
	"pond/internal/telemetry"
)

// HistoryWindowSec is the trailing window for customer history features:
// "the recorded untouched memory by a customer's VMs in the last week"
// (§4.4).
const HistoryWindowSec = 7 * 86400

// UMDataset is a chronologically consistent untouched-memory training and
// evaluation corpus: each VM's features use only outcomes of VMs that
// departed before it arrived.
type UMDataset struct {
	X             [][]float64
	TrueUntouched []float64
	MemGB         []float64
	ArrivalSec    []float64
}

// Len returns the number of samples.
func (d UMDataset) Len() int { return len(d.X) }

// Eval converts the dataset (or a subrange) into an evaluation set.
func (d UMDataset) Eval(from, to int) UMEval {
	return UMEval{
		X:             d.X[from:to],
		TrueUntouched: d.TrueUntouched[from:to],
		MemGB:         d.MemGB[from:to],
	}
}

// SplitAtDay returns the index of the first sample arriving on or after
// the given day, for train-on-past/test-on-future splits (the nightly
// retraining of §5).
func (d UMDataset) SplitAtDay(day int) int {
	cut := float64(day) * 86400
	return sort.Search(len(d.ArrivalSec), func(i int) bool { return d.ArrivalSec[i] >= cut })
}

// BuildUMDataset replays the traces in arrival order, maintaining each
// customer's outcome history as departures complete, and emits one sample
// per VM.
func BuildUMDataset(traces []cluster.Trace) UMDataset {
	var all []cluster.VMRequest
	for _, tr := range traces {
		all = append(all, tr.VMs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ArrivalSec < all[j].ArrivalSec })

	// Departure-ordered view for causal outcome insertion.
	departures := append([]cluster.VMRequest(nil), all...)
	sort.Slice(departures, func(i, j int) bool { return departures[i].DepartureSec() < departures[j].DepartureSec() })

	store := telemetry.NewStore()
	var ds UMDataset
	di := 0
	for _, vm := range all {
		// Fold in every VM that departed before this arrival.
		for di < len(departures) && departures[di].DepartureSec() <= vm.ArrivalSec {
			d := departures[di]
			store.RecordOutcome(d.Customer, d.DepartureSec(), d.GroundTruth.UntouchedFrac)
			di++
		}
		h := store.CustomerHistory(vm.Customer, vm.ArrivalSec, HistoryWindowSec)
		ds.X = append(ds.X, UMFeatures(vm, h))
		ds.TrueUntouched = append(ds.TrueUntouched, vm.GroundTruth.UntouchedFrac)
		ds.MemGB = append(ds.MemGB, vm.Type.MemoryGB)
		ds.ArrivalSec = append(ds.ArrivalSec, vm.ArrivalSec)
	}
	return ds
}
