package sim

import (
	"math"
	"testing"

	"pond/internal/cluster"
)

func testTraces(t *testing.T, clusters, days int) []cluster.Trace {
	t.Helper()
	cfg := cluster.DefaultGenConfig()
	cfg.Clusters = clusters
	cfg.Days = days
	cfg.ServersPerCluster = 12
	return cluster.Generate(cfg)
}

func TestBuildScheduleLowRejection(t *testing.T) {
	for _, tr := range testTraces(t, 4, 20) {
		s := BuildSchedule(&tr)
		if rate := s.RejectionRate(); rate > 0.08 {
			t.Fatalf("%s: rejection rate %.3f too high", tr.Name, rate)
		}
	}
}

func TestBuildScheduleRespectsCapacity(t *testing.T) {
	tr := testTraces(t, 1, 20)[0]
	s := BuildSchedule(&tr)
	// Replay and verify capacity never goes negative.
	nodes := make([][]nodeState, tr.Servers)
	for i := range nodes {
		nodes[i] = make([]nodeState, tr.Spec.Sockets)
		for j := range nodes[i] {
			nodes[i][j] = nodeState{coresFree: tr.Spec.CoresPerSock, memFree: tr.Spec.MemGBPerSock}
		}
	}
	for _, ev := range buildEvents(tr.VMs) {
		a := s.Placement[ev.vmIndex]
		if a == Rejected {
			continue
		}
		vm := &tr.VMs[ev.vmIndex]
		n := &nodes[a.Server][a.Node]
		if ev.arrive {
			n.coresFree -= vm.Type.Cores
			n.memFree -= vm.Type.MemoryGB
			if n.coresFree < 0 || n.memFree < -1e-9 {
				t.Fatalf("capacity violated on server %d node %d", a.Server, a.Node)
			}
		} else {
			n.coresFree += vm.Type.Cores
			n.memFree += vm.Type.MemoryGB
		}
	}
}

func TestStrandingSeriesShape(t *testing.T) {
	tr := testTraces(t, 1, 20)[0]
	s := BuildSchedule(&tr)
	series := StrandingSeries(s)
	if len(series) != tr.Days {
		t.Fatalf("series length = %d, want %d", len(series), tr.Days)
	}
	for _, sample := range series {
		if sample.ScheduledCoreFrac < 0 || sample.ScheduledCoreFrac > 1 {
			t.Fatalf("day %d: scheduled frac %v", sample.Day, sample.ScheduledCoreFrac)
		}
		if sample.StrandedMemFrac < 0 || sample.StrandedMemFrac > 1 {
			t.Fatalf("day %d: stranded frac %v", sample.Day, sample.StrandedMemFrac)
		}
		if sample.StrandedMemFrac > 1-sample.AllocatedMemFrac+1e-9 {
			t.Fatalf("day %d: stranded %v exceeds free memory %v",
				sample.Day, sample.StrandedMemFrac, 1-sample.AllocatedMemFrac)
		}
	}
}

func TestStrandingGrowsWithUtilization(t *testing.T) {
	// Figure 2a's core shape: stranding increases with scheduled cores.
	traces := testTraces(t, 10, 25)
	var series [][]StrandingSample
	for i := range traces {
		series = append(series, StrandingSeries(BuildSchedule(&traces[i])))
	}
	buckets := BucketStranding(series)
	if len(buckets) < 4 {
		t.Fatalf("only %d buckets populated", len(buckets))
	}
	lo, hi := buckets[0], buckets[len(buckets)-1]
	if hi.MeanStranded <= lo.MeanStranded {
		t.Fatalf("stranding flat: %.2f%% at %d%% vs %.2f%% at %d%%",
			lo.MeanStranded, lo.ScheduledPct, hi.MeanStranded, hi.ScheduledPct)
	}
}

func TestBucketPercentileOrdering(t *testing.T) {
	traces := testTraces(t, 8, 25)
	var series [][]StrandingSample
	for i := range traces {
		series = append(series, StrandingSeries(BuildSchedule(&traces[i])))
	}
	for _, b := range BucketStranding(series) {
		if !(b.P5Stranded <= b.MeanStranded+1e-9 && b.MeanStranded <= b.P95Stranded+1e-9) {
			t.Fatalf("bucket %d%%: p5 %.2f mean %.2f p95 %.2f out of order",
				b.ScheduledPct, b.P5Stranded, b.MeanStranded, b.P95Stranded)
		}
		if b.MaxStranded < b.P95Stranded {
			t.Fatalf("bucket %d%%: max below p95", b.ScheduledPct)
		}
	}
}

func TestUniformPlan(t *testing.T) {
	p := UniformPlan(3, 0.3)
	if len(p.PoolFrac) != 3 || p.PoolFrac[1] != 0.3 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestRequiredDRAMNoPoolIsBaseline(t *testing.T) {
	tr := testTraces(t, 1, 15)[0]
	s := BuildSchedule(&tr)
	req := RequiredDRAM(s, 16, UniformPlan(len(tr.VMs), 0))
	if math.Abs(req.RequiredPct()-100) > 1e-9 {
		t.Fatalf("no-pool required = %v%%, want 100%%", req.RequiredPct())
	}
	if req.PoolGB != 0 {
		t.Fatalf("no-pool plan used %v GB of pool", req.PoolGB)
	}
}

func TestRequiredDRAMPoolingSaves(t *testing.T) {
	tr := testTraces(t, 1, 20)[0]
	s := BuildSchedule(&tr)
	req := RequiredDRAM(s, 16, UniformPlan(len(tr.VMs), 0.5))
	if req.RequiredPct() >= 100 {
		t.Fatalf("pooling did not save: %v%%", req.RequiredPct())
	}
	if req.RequiredPct() < 70 {
		t.Fatalf("savings implausibly high: %v%%", req.RequiredPct())
	}
}

func TestRequiredDRAMDiminishingReturns(t *testing.T) {
	// Figure 3: bigger pools save more, with diminishing returns.
	traces := testTraces(t, 6, 20)
	required := map[int]float64{}
	for _, k := range []int{2, 8, 16, 32, 64} {
		var agg Requirement
		for i := range traces {
			s := BuildSchedule(&traces[i])
			agg.Add(RequiredDRAM(s, k, UniformPlan(len(traces[i].VMs), 0.5)))
		}
		required[k] = agg.RequiredPct()
	}
	if !(required[2] > required[8] && required[8] > required[16] && required[16] >= required[32] && required[32] >= required[64]) {
		t.Fatalf("required DRAM not monotone in pool size: %v", required)
	}
	// Diminishing: the 8->16 improvement should exceed the 32->64 one.
	if (required[8] - required[16]) < (required[32] - required[64]) {
		t.Fatalf("no diminishing returns: %v", required)
	}
}

func TestRequiredDRAMMorePoolFracSavesMore(t *testing.T) {
	tr := testTraces(t, 1, 20)[0]
	s := BuildSchedule(&tr)
	r10 := RequiredDRAM(s, 16, UniformPlan(len(tr.VMs), 0.1)).RequiredPct()
	r30 := RequiredDRAM(s, 16, UniformPlan(len(tr.VMs), 0.3)).RequiredPct()
	r50 := RequiredDRAM(s, 16, UniformPlan(len(tr.VMs), 0.5)).RequiredPct()
	if !(r10 > r30 && r30 > r50) {
		t.Fatalf("pool share ordering violated: %v %v %v", r10, r30, r50)
	}
}

func TestRequiredDRAMMitigationMovesMemory(t *testing.T) {
	tr := testTraces(t, 1, 15)[0]
	s := BuildSchedule(&tr)
	plan := UniformPlan(len(tr.VMs), 0.5)
	// Mitigate every VM just after arrival: pool demand collapses
	// toward zero, local returns toward baseline.
	plan.MitigateAtSec = map[int]float64{}
	for i, vm := range tr.VMs {
		plan.MitigateAtSec[i] = vm.ArrivalSec + 1
	}
	req := RequiredDRAM(s, 16, plan)
	noPool := RequiredDRAM(s, 16, UniformPlan(len(tr.VMs), 0))
	if req.LocalGB < noPool.LocalGB*0.95 {
		t.Fatalf("mitigated local %v far below baseline %v", req.LocalGB, noPool.LocalGB)
	}
	// Peak pool demand is small but nonzero (brief residency).
	if req.PoolGB > noPool.BaselineGB*0.2 {
		t.Fatalf("mitigated pool demand %v too high", req.PoolGB)
	}
}

func TestRequiredDRAMPanicsOnBadPlan(t *testing.T) {
	tr := testTraces(t, 1, 10)[0]
	s := BuildSchedule(&tr)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RequiredDRAM(s, 16, SplitPlan{PoolFrac: []float64{0.5}})
}

func TestRequirementAccumulation(t *testing.T) {
	a := Requirement{BaselineGB: 100, LocalGB: 70, PoolGB: 20}
	b := Requirement{BaselineGB: 100, LocalGB: 80, PoolGB: 10}
	a.Add(b)
	if a.BaselineGB != 200 || a.LocalGB != 150 || a.PoolGB != 30 {
		t.Fatalf("accumulated = %+v", a)
	}
	if a.RequiredPct() != 90 {
		t.Fatalf("required = %v", a.RequiredPct())
	}
	if a.SavingsPct() != 10 {
		t.Fatalf("savings = %v", a.SavingsPct())
	}
}

func TestPoolGBAlignment(t *testing.T) {
	if poolGBFor(16, 0.3) != 4 { // 4.8 rounds down
		t.Fatalf("poolGBFor(16, 0.3) = %v", poolGBFor(16, 0.3))
	}
	if poolGBFor(16, 0) != 0 || poolGBFor(16, 1.5) != 16 {
		t.Fatal("alignment edge cases wrong")
	}
}
