package sim

import (
	"sort"

	"pond/internal/stats"
)

// StrandingSample is one cluster-day observation: the fraction of cores
// scheduled and the fraction of memory stranded — the two axes of
// Figure 2a.
type StrandingSample struct {
	Day               int
	ScheduledCoreFrac float64
	StrandedMemFrac   float64
	AllocatedMemFrac  float64
}

// StrandingSeries replays the schedule and samples stranding daily.
// Memory counts as stranded when it is free on a NUMA node whose cores
// are fully rented: technically available, practically unrentable (§2).
// The daily value is the time-weighted average over that day.
func StrandingSeries(s Schedule) []StrandingSample {
	tr := s.Trace
	nodes := make([][]nodeState, tr.Servers)
	for i := range nodes {
		nodes[i] = make([]nodeState, tr.Spec.Sockets)
		for j := range nodes[i] {
			nodes[i][j] = nodeState{coresFree: tr.Spec.CoresPerSock, memFree: tr.Spec.MemGBPerSock}
		}
	}
	totalCores := float64(tr.TotalClusterCores())
	totalMem := tr.TotalClusterMemGB()

	events := buildEvents(tr.VMs)
	samples := make([]StrandingSample, tr.Days)
	weights := make([]float64, tr.Days)

	prev := 0.0
	measure := func() (coreFrac, strandFrac, allocFrac float64) {
		var coresUsed, stranded, memUsed float64
		for si := range nodes {
			for ni := range nodes[si] {
				n := nodes[si][ni]
				coresUsed += float64(tr.Spec.CoresPerSock - n.coresFree)
				memUsed += tr.Spec.MemGBPerSock - n.memFree
				if n.coresFree == 0 {
					stranded += n.memFree
				}
			}
		}
		return coresUsed / totalCores, stranded / totalMem, memUsed / totalMem
	}

	accumulate := func(from, to float64) {
		coreFrac, strandFrac, allocFrac := measure()
		for from < to {
			day := int(from / 86400)
			if day >= tr.Days {
				return
			}
			endOfDay := float64(day+1) * 86400
			if endOfDay > to {
				endOfDay = to
			}
			w := endOfDay - from
			samples[day].Day = day
			samples[day].ScheduledCoreFrac += w * coreFrac
			samples[day].StrandedMemFrac += w * strandFrac
			samples[day].AllocatedMemFrac += w * allocFrac
			weights[day] += w
			from = endOfDay
		}
	}

	for _, ev := range events {
		if ev.sec > prev {
			accumulate(prev, ev.sec)
			prev = ev.sec
		}
		a := s.Placement[ev.vmIndex]
		if a == Rejected {
			continue
		}
		vm := &tr.VMs[ev.vmIndex]
		n := &nodes[a.Server][a.Node]
		if ev.arrive {
			n.coresFree -= vm.Type.Cores
			n.memFree -= vm.Type.MemoryGB
		} else {
			n.coresFree += vm.Type.Cores
			n.memFree += vm.Type.MemoryGB
		}
	}
	accumulate(prev, float64(tr.Days)*86400)

	for d := range samples {
		if weights[d] > 0 {
			samples[d].ScheduledCoreFrac /= weights[d]
			samples[d].StrandedMemFrac /= weights[d]
			samples[d].AllocatedMemFrac /= weights[d]
		}
		samples[d].Day = d
	}
	return samples
}

// UtilBucket aggregates cluster-days whose scheduled-core fraction falls
// in one Figure 2a bucket.
type UtilBucket struct {
	// ScheduledPct is the bucket's center (e.g. 75 for [72.5, 77.5)).
	ScheduledPct int
	N            int
	MeanStranded float64
	P5Stranded   float64
	P95Stranded  float64
	MaxStranded  float64
}

// BucketStranding groups daily samples from many clusters into 5-point
// scheduled-core buckets from 60% to 95%, reproducing Figure 2a.
func BucketStranding(series [][]StrandingSample) []UtilBucket {
	byBucket := map[int][]float64{}
	for _, samples := range series {
		for _, s := range samples {
			pct := s.ScheduledCoreFrac * 100
			bucket := int((pct+2.5)/5) * 5
			if bucket < 60 || bucket > 95 {
				continue
			}
			byBucket[bucket] = append(byBucket[bucket], s.StrandedMemFrac*100)
		}
	}
	keys := make([]int, 0, len(byBucket))
	for k := range byBucket {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]UtilBucket, 0, len(keys))
	for _, k := range keys {
		xs := byBucket[k]
		out = append(out, UtilBucket{
			ScheduledPct: k,
			N:            len(xs),
			MeanStranded: stats.Mean(xs),
			P5Stranded:   stats.Quantile(xs, 0.05),
			P95Stranded:  stats.Quantile(xs, 0.95),
			MaxStranded:  stats.Max(xs),
		})
	}
	return out
}
