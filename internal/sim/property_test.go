package sim

import (
	"testing"
	"testing/quick"

	"pond/internal/cluster"
)

// Property: for any pool size and uniform fraction, the requirement
// decomposition stays consistent: local never exceeds baseline, pool is
// non-negative, and the zero-fraction plan is exactly the baseline.
func TestRequirementDecompositionProperty(t *testing.T) {
	cfg := cluster.DefaultGenConfig()
	cfg.Clusters = 1
	cfg.Days = 10
	cfg.ServersPerCluster = 6
	tr := cluster.Generate(cfg)[0]
	s := BuildSchedule(&tr)

	f := func(rawK, rawFrac uint8) bool {
		k := 1 + int(rawK%64)
		frac := float64(rawFrac%101) / 100
		req := RequiredDRAM(s, k, UniformPlan(len(tr.VMs), frac))
		if req.LocalGB < 0 || req.PoolGB < 0 {
			return false
		}
		if req.LocalGB > req.BaselineGB+1e-6 {
			return false
		}
		if frac == 0 && (req.PoolGB != 0 || req.RequiredPct() != 100) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: stranding samples stay within physical bounds for any
// generated cluster.
func TestStrandingBoundsProperty(t *testing.T) {
	f := func(seed uint16) bool {
		cfg := cluster.DefaultGenConfig()
		cfg.Clusters = 1
		cfg.Days = 6
		cfg.ServersPerCluster = 4
		cfg.Seed = int64(seed) + 1
		tr := cluster.Generate(cfg)[0]
		for _, s := range StrandingSeries(BuildSchedule(&tr)) {
			if s.StrandedMemFrac < 0 || s.StrandedMemFrac > 1 {
				return false
			}
			if s.ScheduledCoreFrac < 0 || s.ScheduledCoreFrac > 1 {
				return false
			}
			if s.StrandedMemFrac > 1-s.AllocatedMemFrac+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
