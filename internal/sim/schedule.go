// Package sim is the trace-driven cluster simulator of §6.1: it packs VM
// requests onto servers at per-event accuracy, measures memory stranding
// (Figure 2), and evaluates how much DRAM each allocation policy requires
// as a function of pool size (Figures 3 and 21).
//
// Like the paper's simulator, placement is computed once (VMs stay on the
// nodes the packing chose) and policies only change how each VM's memory
// splits between socket-local and pool DRAM. Required DRAM is accounted
// bottom-up: each socket must be provisioned for its peak local demand,
// and each pool group (the K sockets sharing EMCs) for its peak aggregate
// pool demand. Pooling saves memory exactly when deviations across
// sockets do not peak together — the statistical multiplexing effect the
// paper exploits.
package sim

import (
	"sort"

	"pond/internal/cluster"
)

// Assignment places one VM on a server's NUMA node.
type Assignment struct {
	Server int
	Node   int
}

// Rejected marks a VM the packing could not place.
var Rejected = Assignment{Server: -1, Node: -1}

// Schedule is the fixed placement of a trace onto its cluster.
type Schedule struct {
	Trace     *cluster.Trace
	Placement []Assignment // parallel to Trace.VMs
	RejectedN int
}

// nodeState tracks one socket during packing.
type nodeState struct {
	coresFree int
	memFree   float64
}

// event is one arrival or departure during replay.
type event struct {
	sec     float64
	vmIndex int
	arrive  bool
}

// BuildSchedule packs the trace's VMs onto nodes with a best-fit policy:
// among nodes that fit both cores and memory, pick the one with the
// fewest cores left after placement (tight packing, like production bin
// packing). VMs that fit nowhere are rejected, mirroring the paper's
// "moved to another server" escape hatch.
func BuildSchedule(tr *cluster.Trace) Schedule {
	s := Schedule{Trace: tr, Placement: make([]Assignment, len(tr.VMs))}
	nodes := make([][]nodeState, tr.Servers)
	for i := range nodes {
		nodes[i] = make([]nodeState, tr.Spec.Sockets)
		for j := range nodes[i] {
			nodes[i][j] = nodeState{coresFree: tr.Spec.CoresPerSock, memFree: tr.Spec.MemGBPerSock}
		}
	}
	events := buildEvents(tr.VMs)
	for _, ev := range events {
		vm := &tr.VMs[ev.vmIndex]
		if !ev.arrive {
			a := s.Placement[ev.vmIndex]
			if a != Rejected {
				nodes[a.Server][a.Node].coresFree += vm.Type.Cores
				nodes[a.Server][a.Node].memFree += vm.Type.MemoryGB
			}
			continue
		}
		best := Rejected
		bestLeft := 1 << 30
		for si := range nodes {
			for ni := range nodes[si] {
				n := &nodes[si][ni]
				if n.coresFree < vm.Type.Cores || n.memFree < vm.Type.MemoryGB {
					continue
				}
				left := n.coresFree - vm.Type.Cores
				if left < bestLeft {
					bestLeft = left
					best = Assignment{Server: si, Node: ni}
				}
			}
		}
		s.Placement[ev.vmIndex] = best
		if best == Rejected {
			s.RejectedN++
			continue
		}
		nodes[best.Server][best.Node].coresFree -= vm.Type.Cores
		nodes[best.Server][best.Node].memFree -= vm.Type.MemoryGB
	}
	return s
}

// buildEvents returns the trace's arrivals and departures in time order,
// departures before arrivals at equal timestamps so capacity frees first.
func buildEvents(vms []cluster.VMRequest) []event {
	events := make([]event, 0, 2*len(vms))
	for i, vm := range vms {
		events = append(events,
			event{sec: vm.ArrivalSec, vmIndex: i, arrive: true},
			event{sec: vm.DepartureSec(), vmIndex: i, arrive: false},
		)
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].sec != events[b].sec {
			return events[a].sec < events[b].sec
		}
		return !events[a].arrive && events[b].arrive
	})
	return events
}

// PlacedVMs returns the number of VMs that received a placement.
func (s Schedule) PlacedVMs() int { return len(s.Placement) - s.RejectedN }

// RejectionRate returns the fraction of VMs the packing dropped.
func (s Schedule) RejectionRate() float64 {
	if len(s.Placement) == 0 {
		return 0
	}
	return float64(s.RejectedN) / float64(len(s.Placement))
}
