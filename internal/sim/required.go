package sim

import (
	"fmt"
	"math"
	"sort"

	"pond/internal/stats"
)

// SplitPlan assigns each VM of a schedule its pool-memory share and the
// optional mitigation moment when the QoS pipeline migrates it back to
// all-local memory.
type SplitPlan struct {
	// PoolFrac is the fraction of each VM's memory placed on the pool
	// (parallel to the trace's VMs). The actual pool allocation rounds
	// down to whole GB, matching Pond's 1 GB-aligned increments (§4.3).
	PoolFrac []float64

	// MitigateAtSec, when present for a VM index, moves its pool share
	// back to local memory at that absolute time (the one-time
	// reconfiguration of §4.2).
	MitigateAtSec map[int]float64
}

// UniformPlan gives every VM the same pool fraction — the strawman
// policies of Figures 3 and 21.
func UniformPlan(n int, frac float64) SplitPlan {
	fr := make([]float64, n)
	for i := range fr {
		fr[i] = frac
	}
	return SplitPlan{PoolFrac: fr}
}

// Requirement is the provisioning outcome for one cluster.
//
// The accounting follows the paper's argument in §2: servers are bought
// as one fleet-wide SKU, so without pooling every socket must carry
// enough DRAM for the most memory-hungry VM mix it may receive — that is
// today's provisioning, stranding included, and it is the baseline.
// With pooling, the per-socket SKU shrinks by the share of VM memory the
// policy places on pools ("provision servers close to the average
// DRAM-to-core ratios"), while each pool group is provisioned for a high
// time-quantile of its own aggregate demand ("tackle deviations via the
// memory pool"). Pooling therefore saves DRAM exactly where the paper
// says it does: pool demand runs below the pooled share of provisioned
// DRAM because core-heavy clusters never ask for it (stranding recovery)
// and group peaks multiplex across sockets and time.
type Requirement struct {
	BaselineGB float64
	LocalGB    float64
	PoolGB     float64
}

// RequiredPct returns required DRAM relative to the no-pooling baseline.
func (r Requirement) RequiredPct() float64 {
	if r.BaselineGB == 0 {
		return 100
	}
	return 100 * (r.LocalGB + r.PoolGB) / r.BaselineGB
}

// SavingsPct returns the DRAM saved relative to no pooling.
func (r Requirement) SavingsPct() float64 { return 100 - r.RequiredPct() }

// Add accumulates another cluster's requirement.
func (r *Requirement) Add(o Requirement) {
	r.BaselineGB += o.BaselineGB
	r.LocalGB += o.LocalGB
	r.PoolGB += o.PoolGB
}

// String renders the requirement.
func (r Requirement) String() string {
	return fmt.Sprintf("baseline=%.0fGB local=%.0fGB pool=%.0fGB required=%.1f%%",
		r.BaselineGB, r.LocalGB, r.PoolGB, r.RequiredPct())
}

// poolGBFor returns the GB-aligned pool allocation for a VM.
func poolGBFor(memGB, frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	return math.Floor(memGB * frac)
}

// poolProvisioningQuantile is the time quantile of group pool demand the
// pool is sized for; brief demand above it falls back to local allocation
// (Pond's scheduler tolerates transient pool exhaustion, §4.3).
const poolProvisioningQuantile = 0.99

// poolSampleSec is the pool-demand sampling interval.
const poolSampleSec = 3600.0

// GroupDemand is one pool group's sampled demand profile: the peak
// aggregate pool draw and the poolSampleSec-spaced samples the
// provisioning quantile is taken over. The offline capacity planner
// (internal/capacity) consumes these directly — fold Samples into a
// capacity.Demand to run the savings waterfall against a trace replay.
type GroupDemand struct {
	PeakGB  float64
	Samples []float64
}

// PoolDemand replays the schedule under the split plan and returns each
// pool group's demand profile plus the GB-weighted share of VM memory
// the plan placed on the pool. Sockets are grouped contiguously into
// pools: a 16-socket pool over dual-socket servers groups 8 servers
// around shared EMCs.
func PoolDemand(s Schedule, poolSockets int, plan SplitPlan) (groups []GroupDemand, poolShare float64) {
	tr := s.Trace
	if len(plan.PoolFrac) != len(tr.VMs) {
		panic(fmt.Sprintf("sim: plan has %d fractions for %d VMs", len(plan.PoolFrac), len(tr.VMs)))
	}
	if poolSockets < 1 {
		panic("sim: poolSockets must be >= 1")
	}
	nSockets := tr.Servers * tr.Spec.Sockets
	nGroups := (nSockets + poolSockets - 1) / poolSockets

	poolUse := make([]float64, nGroups) // current pool demand per group
	poolPeak := make([]float64, nGroups)
	poolSamples := make([][]float64, nGroups)

	// GB-time integrals for the pooled share of the SKU.
	var poolGBSec, memGBSec float64

	type rEvent struct {
		sec     float64
		vmIndex int
		kind    int // 0 arrive, 1 mitigate, 2 depart
	}
	events := make([]rEvent, 0, 2*len(tr.VMs))
	for i, vm := range tr.VMs {
		if s.Placement[i] == Rejected {
			continue
		}
		events = append(events,
			rEvent{sec: vm.ArrivalSec, vmIndex: i, kind: 0},
			rEvent{sec: vm.DepartureSec(), vmIndex: i, kind: 2},
		)
		poolEnd := vm.DepartureSec()
		if at, ok := plan.MitigateAtSec[i]; ok && at < vm.DepartureSec() {
			events = append(events, rEvent{sec: at, vmIndex: i, kind: 1})
			poolEnd = at
		}
		poolGBSec += poolGBFor(vm.Type.MemoryGB, plan.PoolFrac[i]) * (poolEnd - vm.ArrivalSec)
		memGBSec += vm.Type.MemoryGB * vm.LifetimeSec
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].sec != events[b].sec {
			return events[a].sec < events[b].sec
		}
		return events[a].kind > events[b].kind // departures free capacity first
	})

	mitigated := make(map[int]bool)
	nextSample := poolSampleSec
	for _, ev := range events {
		for nextSample <= ev.sec {
			for g := range poolUse {
				poolSamples[g] = append(poolSamples[g], poolUse[g])
			}
			nextSample += poolSampleSec
		}
		vm := &tr.VMs[ev.vmIndex]
		a := s.Placement[ev.vmIndex]
		socket := a.Server*tr.Spec.Sockets + a.Node
		group := socket / poolSockets
		poolGB := poolGBFor(vm.Type.MemoryGB, plan.PoolFrac[ev.vmIndex])

		switch ev.kind {
		case 0: // arrive
			poolUse[group] += poolGB
			if poolUse[group] > poolPeak[group] {
				poolPeak[group] = poolUse[group]
			}
		case 1: // mitigate: pool share moves to local
			if mitigated[ev.vmIndex] || poolGB == 0 {
				continue
			}
			mitigated[ev.vmIndex] = true
			poolUse[group] -= poolGB
		case 2: // depart
			if !mitigated[ev.vmIndex] {
				poolUse[group] -= poolGB
			}
		}
	}

	if memGBSec > 0 {
		poolShare = stats.Clamp(poolGBSec/memGBSec, 0, 1)
	}
	groups = make([]GroupDemand, nGroups)
	for g := range groups {
		groups[g] = GroupDemand{PeakGB: poolPeak[g], Samples: poolSamples[g]}
	}
	return groups, poolShare
}

// RequiredDRAM replays the schedule under the split plan and returns the
// cluster's DRAM requirement for pools spanning poolSockets sockets:
// each group's pool is provisioned for the poolProvisioningQuantile of
// its own demand profile, and the per-socket SKU shrinks by the pooled
// share of VM memory.
func RequiredDRAM(s Schedule, poolSockets int, plan SplitPlan) Requirement {
	tr := s.Trace
	groups, poolShare := PoolDemand(s, poolSockets, plan)

	var req Requirement
	req.BaselineGB = float64(tr.Servers*tr.Spec.Sockets) * tr.Spec.MemGBPerSock
	req.LocalGB = req.BaselineGB * (1 - poolShare)
	for _, g := range groups {
		if len(g.Samples) == 0 {
			req.PoolGB += g.PeakGB
			continue
		}
		p := stats.Quantile(g.Samples, poolProvisioningQuantile)
		if p > g.PeakGB {
			p = g.PeakGB
		}
		req.PoolGB += p
	}
	return req
}
