package host

import (
	"fmt"
	"sort"

	"pond/internal/cluster"
	"pond/internal/pool"
)

// NodeState is one NUMA node's free-resource accounting.
type NodeState struct {
	CoresFree int     `json:"cores_free"`
	MemFreeGB float64 `json:"mem_free_gb"`
}

// PlacementState is one resident VM's placement. The guest-visible
// topology and page table are not carried: the fleet simulator runs with
// SkipGuestTopology and never boots guests, so both are zero for every
// placement a fleet snapshot can see.
type PlacementState struct {
	VM           cluster.VMRequest `json:"vm"`
	Node         int               `json:"node"`
	LocalGB      float64           `json:"local_gb"`
	PoolGB       float64           `json:"pool_gb"`
	Slices       []pool.SliceRef   `json:"slices,omitempty"`
	AccelEnabled bool              `json:"accel_enabled"`
	Reconfigured bool              `json:"reconfigured,omitempty"`
	SpannedGB    float64           `json:"spanned_gb,omitempty"`
	SpanNode     int               `json:"span_node"`
}

// State is the serializable dynamic state of a Host: per-node free
// resources, the pool partition, and every resident placement (sorted by
// VM ID so the encoding is deterministic). ID, spec, and config are
// rebuilt by the restoring caller; the placement freelist is a pure
// cache and restores empty.
type State struct {
	Nodes        []NodeState      `json:"nodes"`
	PoolFreeGB   float64          `json:"pool_free_gb"`
	PoolOnlineGB float64          `json:"pool_online_gb"`
	VMs          []PlacementState `json:"vms,omitempty"`
}

// State captures the host's current state for serialization.
func (h *Host) State() State {
	s := State{PoolFreeGB: h.poolFreeGB, PoolOnlineGB: h.poolOnlineGB}
	for _, nd := range h.nodes {
		s.Nodes = append(s.Nodes, NodeState{CoresFree: nd.coresFree, MemFreeGB: nd.memFreeGB})
	}
	ids := make([]cluster.VMID, 0, len(h.vms))
	for id := range h.vms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := h.vms[id]
		s.VMs = append(s.VMs, PlacementState{
			VM: p.VM, Node: p.Node, LocalGB: p.LocalGB, PoolGB: p.PoolGB,
			Slices:       append([]pool.SliceRef(nil), p.Slices...),
			AccelEnabled: p.AccelEnabled, Reconfigured: p.Reconfigured,
			SpannedGB: p.SpannedGB, SpanNode: p.SpanNode,
		})
	}
	return s
}

// SetState restores a state captured by State onto a freshly built host
// with the same spec.
func (h *Host) SetState(s State) error {
	if len(s.Nodes) != len(h.nodes) {
		return fmt.Errorf("host %d: state has %d NUMA nodes, host has %d", h.ID, len(s.Nodes), len(h.nodes))
	}
	for i, nd := range s.Nodes {
		h.nodes[i] = numaNode{coresFree: nd.CoresFree, memFreeGB: nd.MemFreeGB}
	}
	h.poolFreeGB = s.PoolFreeGB
	h.poolOnlineGB = s.PoolOnlineGB
	h.vms = make(map[cluster.VMID]*Placement, len(s.VMs))
	h.free = nil
	for _, ps := range s.VMs {
		if _, dup := h.vms[ps.VM.ID]; dup {
			return fmt.Errorf("host %d: state places VM %d twice", h.ID, ps.VM.ID)
		}
		if ps.Node < 0 || ps.Node >= len(h.nodes) {
			return fmt.Errorf("host %d: state places VM %d on node %d of %d", h.ID, ps.VM.ID, ps.Node, len(h.nodes))
		}
		h.vms[ps.VM.ID] = &Placement{
			VM: ps.VM, Node: ps.Node, LocalGB: ps.LocalGB, PoolGB: ps.PoolGB,
			Slices:       append([]pool.SliceRef(nil), ps.Slices...),
			AccelEnabled: ps.AccelEnabled, Reconfigured: ps.Reconfigured,
			SpannedGB: ps.SpannedGB, SpanNode: ps.SpanNode,
		}
	}
	return nil
}
