// Package host models Pond's system-software layer on each server (§4.2):
// the hypervisor that statically preallocates VM memory across socket-local
// DRAM and pool DRAM, exposes pool memory to guests as a zero-core virtual
// NUMA (zNUMA) node, tracks access bits in its page tables, and performs
// the one-time reconfiguration that migrates a mispredicted VM back to
// all-local memory.
package host

import (
	"fmt"
	"math"
	"strings"
)

// VNode is one virtual NUMA node presented to a guest.
type VNode struct {
	ID    int
	CPUs  []int // vCPU ids; empty for a zNUMA node
	MemGB float64
}

// IsZNUMA reports whether the node has memory but no cores — Linux's
// CPU-less NUMA node, which guests allocate from only as a last resort.
func (n VNode) IsZNUMA() bool { return len(n.CPUs) == 0 && n.MemGB > 0 }

// Topology is the SRAT/SLIT view a guest receives (§4.2): a memory block
// per node (node_memblk), CPU assignments (node_cpuid, absent for zNUMA),
// and the NUMA distance matrix (numa_slit) carrying the true latency
// ratio so guest-OS NUMA-aware management works.
type Topology struct {
	Nodes []VNode
	SLIT  [][]int
}

// LocalDistance is the SLIT distance of a node to itself, by ACPI
// convention.
const LocalDistance = 10

// NewTopology builds a guest topology with the given local node (cores,
// local memory) and, when poolGB > 0, a zNUMA node whose SLIT distance
// reflects the pool latency ratio (e.g. 1.82 → distance 18).
func NewTopology(vcpus int, localGB, poolGB, latencyRatio float64) Topology {
	cpus := make([]int, vcpus)
	for i := range cpus {
		cpus[i] = i
	}
	nodes := []VNode{{ID: 0, CPUs: cpus, MemGB: localGB}}
	if poolGB > 0 {
		nodes = append(nodes, VNode{ID: 1, MemGB: poolGB})
	}
	n := len(nodes)
	slit := make([][]int, n)
	remote := int(math.Round(LocalDistance * latencyRatio))
	for i := range slit {
		slit[i] = make([]int, n)
		for j := range slit[i] {
			if i == j {
				slit[i][j] = LocalDistance
			} else {
				slit[i][j] = remote
			}
		}
	}
	return Topology{Nodes: nodes, SLIT: slit}
}

// ZNUMANode returns the index of the zNUMA node, if present.
func (t Topology) ZNUMANode() (int, bool) {
	for i, n := range t.Nodes {
		if n.IsZNUMA() {
			return i, true
		}
	}
	return -1, false
}

// TotalMemGB returns the guest-visible memory across nodes.
func (t Topology) TotalMemGB() float64 {
	var total float64
	for _, n := range t.Nodes {
		total += n.MemGB
	}
	return total
}

// String renders the topology the way `numactl --hardware` shows it in
// the guest (paper Figure 10).
func (t Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "available: %d nodes (0-%d)\n", len(t.Nodes), len(t.Nodes)-1)
	for _, n := range t.Nodes {
		if len(n.CPUs) == 0 {
			fmt.Fprintf(&b, "node %d cpus:\n", n.ID)
		} else {
			fmt.Fprintf(&b, "node %d cpus:", n.ID)
			for _, c := range n.CPUs {
				fmt.Fprintf(&b, " %d", c)
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "node %d size: %d MB\n", n.ID, int(n.MemGB*1024))
	}
	b.WriteString("node distances:\nnode ")
	for i := range t.Nodes {
		fmt.Fprintf(&b, " %3d", i)
	}
	b.WriteString("\n")
	for i, row := range t.SLIT {
		fmt.Fprintf(&b, "  %d: ", i)
		for _, d := range row {
			fmt.Fprintf(&b, " %3d", d)
		}
		b.WriteString("\n")
	}
	return b.String()
}
