package host

import (
	"fmt"

	"pond/internal/cluster"
	"pond/internal/pool"
)

// LiveMigrate moves a VM to a destination host with an all-local
// allocation. This is the QoS monitor's mitigation when the VM's own host
// lacks local headroom for the one-time reconfiguration (§6.4: "the QoS
// monitor initiates a live VM migration to a configuration allocated
// entirely on local DRAM").
//
// The hypervisor disables the virtualization accelerator for the final
// copy, like any live migration (§4.2); the returned duration charges the
// paper's 50 ms/GB copy rate over the full VM memory. The VM's pool
// slices are returned for the Pool Manager's asynchronous release.
func LiveMigrate(src, dst *Host, id cluster.VMID) (durationSec float64, freed []pool.SliceRef, err error) {
	if src == dst {
		return 0, nil, fmt.Errorf("host: live migration requires distinct hosts")
	}
	p, ok := src.Placement(id)
	if !ok {
		return 0, nil, fmt.Errorf("%w: %d", ErrUnknownVM, id)
	}
	vm := p.VM
	// Verify the destination can host the VM entirely locally before
	// touching the source.
	fits := false
	for i := range dst.nodes {
		if dst.nodes[i].coresFree >= vm.Type.Cores && dst.nodes[i].memFreeGB >= vm.Type.MemoryGB {
			fits = true
			break
		}
	}
	if !fits {
		return 0, nil, fmt.Errorf("%w: destination cannot host %d cores / %g GB locally",
			ErrNoCapacity, vm.Type.Cores, vm.Type.MemoryGB)
	}
	released, err := src.ReleaseVM(id)
	if err != nil {
		return 0, nil, err
	}
	if released.PoolGB > 0 {
		// The source frees its online pool capacity; the caller hands
		// the slices back to the Pool Manager.
		if rerr := src.RemovePoolCapacity(released.PoolGB); rerr != nil {
			return 0, nil, rerr
		}
	}
	newP, err := dst.PlaceVM(vm, vm.Type.MemoryGB, 0, nil)
	if err != nil {
		// Undo: put the VM back where it was. The capacity was just
		// freed, so this cannot fail.
		src.AddPoolCapacity(released.PoolGB)
		if _, rerr := src.PlaceVM(vm, released.LocalGB, released.PoolGB, released.Slices); rerr != nil {
			return 0, nil, fmt.Errorf("host: migration rollback failed: %v (after %v)", rerr, err)
		}
		return 0, nil, err
	}
	newP.Reconfigured = true // migration is the mitigation; it happens once
	return vm.Type.MemoryGB * ReconfigSecPerGB, released.Slices, nil
}
