package host

import (
	"errors"
	"testing"

	"pond/internal/cluster"
	"pond/internal/pool"
)

func TestLiveMigrateMovesVMToAllLocal(t *testing.T) {
	src := New(1, testSpec, Config{})
	dst := New(2, testSpec, Config{})
	src.AddPoolCapacity(16)
	refs := []pool.SliceRef{{EMC: 0, Slice: 1}, {EMC: 0, Slice: 2}}
	vm := testVM(1, 4, 32)
	if _, err := src.PlaceVM(vm, 16, 16, refs[:2]); err != nil {
		t.Fatal(err)
	}
	dur, freed, err := LiveMigrate(src, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dur != 32*ReconfigSecPerGB {
		t.Fatalf("duration = %v, want %v", dur, 32*ReconfigSecPerGB)
	}
	if len(freed) != 2 {
		t.Fatalf("freed slices = %d", len(freed))
	}
	if _, ok := src.Placement(1); ok {
		t.Fatal("VM still on source")
	}
	p, ok := dst.Placement(1)
	if !ok || p.PoolGB != 0 || p.LocalGB != 32 {
		t.Fatalf("destination placement = %+v", p)
	}
	if !p.Reconfigured {
		t.Fatal("migration should count as the one-time mitigation")
	}
	// Source pool capacity was offlined.
	if src.OnlinePoolGB() != 0 {
		t.Fatalf("source still has %g GB pool online", src.OnlinePoolGB())
	}
}

func TestLiveMigrateRejectsSameHost(t *testing.T) {
	h := New(1, testSpec, Config{})
	if _, _, err := LiveMigrate(h, h, 1); err == nil {
		t.Fatal("same-host migration accepted")
	}
}

func TestLiveMigrateUnknownVM(t *testing.T) {
	src := New(1, testSpec, Config{})
	dst := New(2, testSpec, Config{})
	if _, _, err := LiveMigrate(src, dst, 42); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("err = %v", err)
	}
}

func TestLiveMigrateChecksDestinationCapacity(t *testing.T) {
	src := New(1, testSpec, Config{})
	dst := New(2, testSpec, Config{})
	src.AddPoolCapacity(8)
	vm := testVM(1, 4, 16)
	if _, err := src.PlaceVM(vm, 8, 8, nil); err != nil {
		t.Fatal(err)
	}
	// Fill the destination completely.
	for i := 2; i <= 3; i++ {
		if _, err := dst.PlaceVM(testVM(cluster.VMID(i), 24, 190), 190, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := LiveMigrate(src, dst, 1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	// The VM must still be intact on the source.
	p, ok := src.Placement(1)
	if !ok || p.PoolGB != 8 {
		t.Fatalf("source placement disturbed: %+v", p)
	}
}

func TestSpanningDisabledByDefault(t *testing.T) {
	h := New(1, testSpec, Config{})
	// Fragment: 92 GB on node 0, then 120 GB (too big for node 0's
	// remaining 100) lands on node 1. Neither node can hold 150 GB.
	if _, err := h.PlaceVM(testVM(1, 2, 92), 92, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlaceVM(testVM(2, 2, 120), 120, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlaceVM(testVM(3, 4, 150), 150, 0, nil); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity without spanning", err)
	}
}

func TestSpanningPlacesAcrossNodes(t *testing.T) {
	h := New(1, testSpec, Config{AllowSpanning: true})
	if _, err := h.PlaceVM(testVM(1, 2, 92), 92, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlaceVM(testVM(2, 2, 120), 120, 0, nil); err != nil {
		t.Fatal(err)
	}
	p, err := h.PlaceVM(testVM(3, 4, 150), 150, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsSpanning() {
		t.Fatal("placement should span")
	}
	// Home node 0 has 100 GB free: 50 GB spans to node 1.
	if p.SpannedGB != 50 {
		t.Fatalf("spanned = %g GB, want 50 (100 on home node)", p.SpannedGB)
	}
	if p.SpanNode == p.Node || p.SpanNode < 0 {
		t.Fatalf("span node = %d, home %d", p.SpanNode, p.Node)
	}
	// Release restores both nodes.
	if _, err := h.ReleaseVM(3); err != nil {
		t.Fatal(err)
	}
	if h.FreeLocalGB() != 384-212 {
		t.Fatalf("free after release = %g", h.FreeLocalGB())
	}
}

func TestSpanningStillRequiresCores(t *testing.T) {
	h := New(1, testSpec, Config{AllowSpanning: true})
	// Consume all cores of both sockets.
	if _, err := h.PlaceVM(testVM(1, 24, 10), 10, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlaceVM(testVM(2, 24, 10), 10, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlaceVM(testVM(3, 2, 8), 8, 0, nil); !errors.Is(err, ErrNoCapacity) {
		t.Fatal("spanning must not invent cores")
	}
}
