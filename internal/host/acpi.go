package host

import (
	"encoding/binary"
	"fmt"
)

// ACPI table encoding. The hypervisor presents the zNUMA topology to the
// guest through the ACPI SRAT (System Resource Affinity Table) and SLIT
// (System Locality Information Table): the zNUMA node appears as a
// memory-affinity entry with no processor-affinity entries — exactly how
// "a memory block (node_memblk) without an entry in the node_cpuid"
// (§4.2) reaches a Linux guest. These encoders produce simplified but
// structurally faithful table bytes, so tests can verify what the guest
// actually parses.

// ACPI structure constants (ACPI 6.4, §5.2.16).
const (
	sratHeaderLen = 48
	slitHeaderLen = 44

	// SRAT affinity structure types.
	sratTypeProcessor = 0
	sratTypeMemory    = 1

	processorAffinityLen = 16
	memoryAffinityLen    = 40

	memoryEnabledFlag = 1 << 0
)

// EncodeSRAT renders the topology's processor and memory affinity
// structures. Every CPU of a node becomes one processor-affinity entry;
// every node's memory becomes one memory-affinity entry. A zNUMA node
// therefore contributes a memory entry and no processor entries.
func EncodeSRAT(t Topology) []byte {
	var body []byte
	for _, n := range t.Nodes {
		for _, cpu := range n.CPUs {
			e := make([]byte, processorAffinityLen)
			e[0] = sratTypeProcessor
			e[1] = processorAffinityLen
			e[2] = byte(n.ID) // proximity domain (low byte)
			e[3] = byte(cpu)  // APIC id
			binary.LittleEndian.PutUint32(e[4:], memoryEnabledFlag)
			body = append(body, e...)
		}
		if n.MemGB > 0 {
			e := make([]byte, memoryAffinityLen)
			e[0] = sratTypeMemory
			e[1] = memoryAffinityLen
			binary.LittleEndian.PutUint32(e[2:], uint32(n.ID)) // proximity domain
			base := memBaseFor(t, n.ID)
			length := uint64(n.MemGB * (1 << 30))
			binary.LittleEndian.PutUint64(e[8:], base)
			binary.LittleEndian.PutUint64(e[16:], length)
			binary.LittleEndian.PutUint32(e[28:], memoryEnabledFlag)
			body = append(body, e...)
		}
	}
	header := make([]byte, sratHeaderLen)
	copy(header[0:4], "SRAT")
	binary.LittleEndian.PutUint32(header[4:], uint32(sratHeaderLen+len(body)))
	header[8] = 3 // revision
	return append(header, body...)
}

// memBaseFor lays node memory ranges out consecutively from zero.
func memBaseFor(t Topology, nodeID int) uint64 {
	var base uint64
	for _, n := range t.Nodes {
		if n.ID == nodeID {
			return base
		}
		base += uint64(n.MemGB * (1 << 30))
	}
	return base
}

// EncodeSLIT renders the locality matrix: a header, the locality count,
// then row-major distances.
func EncodeSLIT(t Topology) []byte {
	n := len(t.Nodes)
	out := make([]byte, slitHeaderLen+8+n*n)
	copy(out[0:4], "SLIT")
	binary.LittleEndian.PutUint32(out[4:], uint32(len(out)))
	out[8] = 1 // revision
	binary.LittleEndian.PutUint64(out[slitHeaderLen:], uint64(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[slitHeaderLen+8+i*n+j] = byte(t.SLIT[i][j])
		}
	}
	return out
}

// ParsedSRAT is the guest's view after parsing the table.
type ParsedSRAT struct {
	// CPUsByDomain maps proximity domain -> APIC ids.
	CPUsByDomain map[int][]int
	// MemGBByDomain maps proximity domain -> memory size.
	MemGBByDomain map[int]float64
}

// ParseSRAT decodes a table produced by EncodeSRAT, as a guest OS would.
func ParseSRAT(raw []byte) (ParsedSRAT, error) {
	p := ParsedSRAT{CPUsByDomain: map[int][]int{}, MemGBByDomain: map[int]float64{}}
	if len(raw) < sratHeaderLen || string(raw[0:4]) != "SRAT" {
		return p, fmt.Errorf("host: not an SRAT table")
	}
	total := int(binary.LittleEndian.Uint32(raw[4:]))
	if total != len(raw) {
		return p, fmt.Errorf("host: SRAT length %d != %d", total, len(raw))
	}
	for off := sratHeaderLen; off < len(raw); {
		if off+2 > len(raw) {
			return p, fmt.Errorf("host: truncated SRAT entry at %d", off)
		}
		typ, l := raw[off], int(raw[off+1])
		if l == 0 || off+l > len(raw) {
			return p, fmt.Errorf("host: bad SRAT entry length %d at %d", l, off)
		}
		switch typ {
		case sratTypeProcessor:
			domain := int(raw[off+2])
			apic := int(raw[off+3])
			p.CPUsByDomain[domain] = append(p.CPUsByDomain[domain], apic)
		case sratTypeMemory:
			domain := int(binary.LittleEndian.Uint32(raw[off+2:]))
			length := binary.LittleEndian.Uint64(raw[off+16:])
			p.MemGBByDomain[domain] += float64(length) / (1 << 30)
		}
		off += l
	}
	return p, nil
}

// ParseSLIT decodes a locality matrix, as a guest OS would.
func ParseSLIT(raw []byte) ([][]int, error) {
	if len(raw) < slitHeaderLen+8 || string(raw[0:4]) != "SLIT" {
		return nil, fmt.Errorf("host: not a SLIT table")
	}
	n := int(binary.LittleEndian.Uint64(raw[slitHeaderLen:]))
	if len(raw) != slitHeaderLen+8+n*n {
		return nil, fmt.Errorf("host: SLIT length mismatch for %d localities", n)
	}
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		out[i] = make([]int, n)
		for j := 0; j < n; j++ {
			out[i][j] = int(raw[slitHeaderLen+8+i*n+j])
		}
	}
	return out, nil
}
