package host

import (
	"math"
	"testing"
)

func TestSRATRoundTrip(t *testing.T) {
	topo := NewTopology(4, 24, 8, 1.82)
	raw := EncodeSRAT(topo)
	parsed, err := ParseSRAT(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0: 4 CPUs, 24 GB. Node 1 (zNUMA): no CPUs, 8 GB.
	if got := parsed.CPUsByDomain[0]; len(got) != 4 {
		t.Fatalf("node 0 CPUs = %v", got)
	}
	if got := parsed.CPUsByDomain[1]; len(got) != 0 {
		t.Fatalf("zNUMA node has processor affinity entries: %v (§4.2 forbids node_cpuid)", got)
	}
	if math.Abs(parsed.MemGBByDomain[0]-24) > 1e-9 || math.Abs(parsed.MemGBByDomain[1]-8) > 1e-9 {
		t.Fatalf("memory domains = %v", parsed.MemGBByDomain)
	}
}

func TestSRATNoZNUMA(t *testing.T) {
	topo := NewTopology(2, 16, 0, 1.82)
	parsed, err := ParseSRAT(EncodeSRAT(topo))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed.MemGBByDomain[1]; ok {
		t.Fatal("phantom zNUMA domain")
	}
}

func TestParseSRATRejectsGarbage(t *testing.T) {
	if _, err := ParseSRAT([]byte("XXXX")); err == nil {
		t.Fatal("garbage accepted")
	}
	raw := EncodeSRAT(NewTopology(2, 8, 4, 1.82))
	if _, err := ParseSRAT(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated table accepted")
	}
}

func TestSLITRoundTrip(t *testing.T) {
	topo := NewTopology(2, 8, 8, 1.82)
	got, err := ParseSLIT(EncodeSLIT(topo))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0] != 10 || got[0][1] != 18 || got[1][0] != 18 || got[1][1] != 10 {
		t.Fatalf("SLIT = %v", got)
	}
}

func TestParseSLITRejectsGarbage(t *testing.T) {
	if _, err := ParseSLIT([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	raw := EncodeSLIT(NewTopology(2, 8, 8, 1.82))
	if _, err := ParseSLIT(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated matrix accepted")
	}
}

func TestSRATMemoryRangesDisjoint(t *testing.T) {
	topo := NewTopology(4, 24, 8, 1.82)
	// Node memory ranges are laid out consecutively: node 1's base is
	// node 0's size.
	if base := memBaseFor(topo, 1); base != uint64(24)<<30 {
		t.Fatalf("node 1 base = %#x", base)
	}
}
