package host

import (
	"errors"
	"strings"
	"testing"

	"pond/internal/cluster"
	"pond/internal/pool"
	"pond/internal/stats"
	"pond/internal/workload"
)

var testSpec = cluster.ServerSpec{Sockets: 2, CoresPerSock: 24, MemGBPerSock: 192}

func testVM(id cluster.VMID, cores int, memGB float64) cluster.VMRequest {
	return cluster.VMRequest{
		ID:   id,
		Type: cluster.VMType{Name: "test", Cores: cores, MemoryGB: memGB},
		GroundTruth: cluster.VMGroundTruth{
			UntouchedFrac: 0.5,
		},
	}
}

func newHost() *Host { return New(1, testSpec, Config{PoolLatencyRatio: 1.82}) }

func TestNewHostCapacity(t *testing.T) {
	h := newHost()
	if h.FreeCores() != 48 || h.FreeLocalGB() != 384 {
		t.Fatalf("fresh host: %d cores, %g GB", h.FreeCores(), h.FreeLocalGB())
	}
	if h.OnlinePoolGB() != 0 || h.FreePoolGB() != 0 {
		t.Fatal("fresh host should have no pool memory")
	}
}

func TestPlaceVMAllLocal(t *testing.T) {
	h := newHost()
	vm := testVM(1, 4, 16)
	p, err := h.PlaceVM(vm, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.LocalGB != 16 || p.PoolGB != 0 {
		t.Fatalf("placement = %+v", p)
	}
	if _, hasZ := p.Topology.ZNUMANode(); hasZ {
		t.Fatal("all-local VM should not get a zNUMA node")
	}
	if h.FreeCores() != 44 || h.FreeLocalGB() != 368 {
		t.Fatalf("capacity accounting wrong: %d cores, %g GB", h.FreeCores(), h.FreeLocalGB())
	}
	if !p.AccelEnabled {
		t.Fatal("acceleration must be on at start (G2)")
	}
}

func TestPlaceVMWithZNUMA(t *testing.T) {
	h := newHost()
	h.AddPoolCapacity(32)
	vm := testVM(2, 8, 32)
	p, err := h.PlaceVM(vm, 24, 8, []pool.SliceRef{{EMC: 0, Slice: 1}})
	if err != nil {
		t.Fatal(err)
	}
	zi, hasZ := p.Topology.ZNUMANode()
	if !hasZ {
		t.Fatal("pool-backed VM must see a zNUMA node")
	}
	if p.Topology.Nodes[zi].MemGB != 8 {
		t.Fatalf("zNUMA size = %g, want 8", p.Topology.Nodes[zi].MemGB)
	}
	if h.FreePoolGB() != 24 {
		t.Fatalf("pool free = %g, want 24", h.FreePoolGB())
	}
}

func TestPlaceVMUnderAllocationRejected(t *testing.T) {
	h := newHost()
	if _, err := h.PlaceVM(testVM(1, 4, 16), 8, 0, nil); err == nil {
		t.Fatal("under-allocation accepted; memory must be fully preallocated (G2)")
	}
}

func TestPlaceVMDuplicateRejected(t *testing.T) {
	h := newHost()
	vm := testVM(1, 2, 8)
	if _, err := h.PlaceVM(vm, 8, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlaceVM(vm, 8, 0, nil); err == nil {
		t.Fatal("duplicate placement accepted")
	}
}

func TestPlaceVMInsufficientPool(t *testing.T) {
	h := newHost()
	h.AddPoolCapacity(4)
	_, err := h.PlaceVM(testVM(1, 2, 16), 8, 8, nil)
	if !errors.Is(err, ErrNoPoolCapacity) {
		t.Fatalf("err = %v, want ErrNoPoolCapacity", err)
	}
}

func TestPlaceVMSingleNUMANode(t *testing.T) {
	// 24 cores per socket: a 16-core VM fits, two of them must land on
	// different sockets, and a third 16-core VM still fits (8+8 free).
	h := newHost()
	p1, err := h.PlaceVM(testVM(1, 16, 64), 64, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := h.PlaceVM(testVM(2, 16, 64), 64, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Node == p2.Node {
		t.Fatal("second 16-core VM should spill to the other socket")
	}
	// Now each socket has 8 free cores; a 16-core VM must be rejected
	// even though 16 cores exist host-wide: VMs never span sockets.
	if _, err := h.PlaceVM(testVM(3, 16, 32), 32, 0, nil); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("cross-socket placement = %v, want ErrNoCapacity", err)
	}
}

func TestReleaseVM(t *testing.T) {
	h := newHost()
	h.AddPoolCapacity(16)
	refs := []pool.SliceRef{{EMC: 0, Slice: 3}, {EMC: 0, Slice: 4}}
	if _, err := h.PlaceVM(testVM(1, 4, 16), 14, 2, refs); err != nil {
		t.Fatal(err)
	}
	p, err := h.ReleaseVM(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Slices) != 2 {
		t.Fatalf("released slices = %d", len(p.Slices))
	}
	if h.FreeCores() != 48 || h.FreeLocalGB() != 384 || h.FreePoolGB() != 16 {
		t.Fatal("release did not restore capacity")
	}
	if _, err := h.ReleaseVM(1); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("double release = %v", err)
	}
}

func TestReconfigure(t *testing.T) {
	h := newHost()
	h.AddPoolCapacity(16)
	if _, err := h.PlaceVM(testVM(1, 4, 32), 16, 16, nil); err != nil {
		t.Fatal(err)
	}
	dur, freed, err := h.Reconfigure(1)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 16 {
		t.Fatalf("freed = %g, want 16", freed)
	}
	// 50 ms per GB of pool memory.
	if dur != 16*ReconfigSecPerGB {
		t.Fatalf("duration = %v, want %v", dur, 16*ReconfigSecPerGB)
	}
	p, _ := h.Placement(1)
	if p.PoolGB != 0 || p.LocalGB != 32 {
		t.Fatalf("post-reconfig placement = %+v", p)
	}
	if !p.AccelEnabled {
		t.Fatal("acceleration must be re-enabled")
	}
	if _, hasZ := p.Topology.ZNUMANode(); hasZ {
		t.Fatal("topology should lose the zNUMA node")
	}
	if !p.Reconfigured {
		t.Fatal("Reconfigured flag not set")
	}
}

func TestReconfigureIsOneTime(t *testing.T) {
	h := newHost()
	h.AddPoolCapacity(8)
	h.PlaceVM(testVM(1, 2, 16), 8, 8, nil)
	if _, _, err := h.Reconfigure(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Reconfigure(1); err == nil {
		t.Fatal("second reconfiguration accepted; mitigation is one-time (§4.2)")
	}
}

func TestReconfigureNeedsLocalHeadroom(t *testing.T) {
	h := New(1, cluster.ServerSpec{Sockets: 1, CoresPerSock: 8, MemGBPerSock: 16}, Config{})
	h.AddPoolCapacity(16)
	if _, err := h.PlaceVM(testVM(1, 2, 24), 12, 12, nil); err != nil {
		t.Fatal(err)
	}
	// Node has 4 GB local free < 12 GB pool: cannot reconfigure.
	if _, _, err := h.Reconfigure(1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestReconfigureAllLocalNoop(t *testing.T) {
	h := newHost()
	h.PlaceVM(testVM(1, 2, 8), 8, 0, nil)
	dur, freed, err := h.Reconfigure(1)
	if err != nil || dur != 0 || freed != 0 {
		t.Fatalf("all-local reconfig = %v %v %v", dur, freed, err)
	}
}

func TestStrandedGB(t *testing.T) {
	h := New(1, cluster.ServerSpec{Sockets: 2, CoresPerSock: 4, MemGBPerSock: 32}, Config{})
	if h.StrandedGB() != 0 {
		t.Fatal("fresh host strands nothing")
	}
	// Fill node 0's cores with a 4-core VM using 8 GB: 24 GB stranded.
	if _, err := h.PlaceVM(testVM(1, 4, 8), 8, 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.StrandedGB(); got != 24 {
		t.Fatalf("stranded = %g, want 24", got)
	}
	// Second node still has free cores: its memory is not stranded.
	if _, err := h.PlaceVM(testVM(2, 2, 4), 4, 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.StrandedGB(); got != 24 {
		t.Fatalf("stranded after partial node = %g, want 24", got)
	}
}

func TestHostAgentPartitionContainment(t *testing.T) {
	h := newHost()
	h.AddPoolCapacity(8)
	if err := h.AllocateHostAgent(1, true); !errors.Is(err, ErrPartition) {
		t.Fatalf("pool-partition host-agent alloc = %v, want ErrPartition", err)
	}
	if err := h.AllocateHostAgent(1, false); err != nil {
		t.Fatalf("local host-agent alloc failed: %v", err)
	}
	if h.FreeLocalGB() != 383 {
		t.Fatalf("local free = %g", h.FreeLocalGB())
	}
	if h.FreePoolGB() != 8 {
		t.Fatal("pool partition must be untouched by host agents")
	}
}

func TestRemovePoolCapacity(t *testing.T) {
	h := newHost()
	h.AddPoolCapacity(8)
	if err := h.RemovePoolCapacity(4); err != nil {
		t.Fatal(err)
	}
	if h.OnlinePoolGB() != 4 {
		t.Fatalf("online = %g", h.OnlinePoolGB())
	}
	if err := h.RemovePoolCapacity(8); err == nil {
		t.Fatal("removing in-use capacity accepted")
	}
}

func TestGuestCommittedOverestimates(t *testing.T) {
	h := newHost()
	vm := testVM(1, 4, 16) // untouched 0.5 => touched 8 GB
	h.PlaceVM(vm, 16, 0, nil)
	got, err := h.GuestCommittedGB(1)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 8 || got > 16 {
		t.Fatalf("committed = %g, want in (8, 16]", got)
	}
	if _, err := h.GuestCommittedGB(99); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("unknown VM = %v", err)
	}
}

func TestVMsOnSlicesBlastRadius(t *testing.T) {
	h := newHost()
	h.AddPoolCapacity(16)
	h.PlaceVM(testVM(1, 2, 8), 4, 4, []pool.SliceRef{{EMC: 0, Slice: 0}})
	h.PlaceVM(testVM(2, 2, 8), 4, 4, []pool.SliceRef{{EMC: 1, Slice: 0}})
	h.PlaceVM(testVM(3, 2, 8), 8, 0, nil)
	hit := h.VMsOnSlices(0)
	if len(hit) != 1 || hit[0] != 1 {
		t.Fatalf("blast radius of EMC 0 = %v, want [1]", hit)
	}
}

func TestVMsList(t *testing.T) {
	h := newHost()
	h.PlaceVM(testVM(1, 2, 8), 8, 0, nil)
	h.PlaceVM(testVM(2, 2, 8), 8, 0, nil)
	if got := len(h.VMs()); got != 2 {
		t.Fatalf("VMs = %d", got)
	}
}

func TestPageTablesOptIn(t *testing.T) {
	fast := New(1, testSpec, Config{})
	p, _ := fast.PlaceVM(testVM(1, 2, 8), 8, 0, nil)
	if p.PageTable != nil {
		t.Fatal("page tables allocated without opt-in")
	}
	slow := New(2, testSpec, Config{EnablePageTables: true})
	p2, _ := slow.PlaceVM(testVM(2, 2, 8), 8, 0, nil)
	if p2.PageTable == nil {
		t.Fatal("page tables missing with opt-in")
	}
}

func TestTopologyString(t *testing.T) {
	topo := NewTopology(4, 24, 8, 1.82)
	s := topo.String()
	for _, want := range []string{"available: 2 nodes", "node 0 cpus: 0 1 2 3", "node 1 cpus:\n", "node 1 size: 8192 MB", "node distances"} {
		if !strings.Contains(s, want) {
			t.Fatalf("topology rendering missing %q:\n%s", want, s)
		}
	}
}

func TestTopologySLITDistances(t *testing.T) {
	topo := NewTopology(2, 8, 8, 1.82)
	if topo.SLIT[0][0] != 10 || topo.SLIT[1][1] != 10 {
		t.Fatal("self distance must be 10")
	}
	if topo.SLIT[0][1] != 18 {
		t.Fatalf("zNUMA distance = %d, want 18 (1.82 ratio)", topo.SLIT[0][1])
	}
}

func TestTopologyTotalMem(t *testing.T) {
	topo := NewTopology(2, 8, 4, 1.5)
	if topo.TotalMemGB() != 12 {
		t.Fatalf("total = %g", topo.TotalMemGB())
	}
}

func TestPageTableTouchAndScan(t *testing.T) {
	pt := NewPageTable(1) // 1 GB => 16 pages of 64 MB
	if pt.Pages() != 16 {
		t.Fatalf("pages = %d, want 16", pt.Pages())
	}
	pt.TouchRange(0, 0.5)
	frac := pt.Scan()
	if frac != 0.5 {
		t.Fatalf("scan frac = %v, want 0.5", frac)
	}
	// Access bits reset; ever-bits persist.
	if got := pt.Scan(); got != 0 {
		t.Fatalf("second scan = %v, want 0", got)
	}
	if pt.UntouchedFrac() != 0.5 {
		t.Fatalf("untouched = %v, want 0.5", pt.UntouchedFrac())
	}
	if pt.Scans() != 2 {
		t.Fatalf("scans = %d", pt.Scans())
	}
}

func TestPageTableTouchOutOfRangeIgnored(t *testing.T) {
	pt := NewPageTable(1)
	pt.Touch(5)    // beyond the VM
	pt.Touch(-0.5) // negative
	if pt.UntouchedFrac() != 1 {
		t.Fatal("out-of-range touches mutated the table")
	}
}

func TestPageTableBitmapCopy(t *testing.T) {
	pt := NewPageTable(1)
	pt.Touch(0)
	bm := pt.AccessBitmap()
	bm[0] = false
	if pt.UntouchedFrac() == 1 {
		t.Fatal("AccessBitmap aliases internal state")
	}
}

func TestDefaultLatencyRatio(t *testing.T) {
	h := New(1, testSpec, Config{})
	h.AddPoolCapacity(8)
	p, err := h.PlaceVM(testVM(1, 2, 8), 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Topology.SLIT[0][1] != 18 {
		t.Fatalf("default ratio distance = %d, want 18", p.Topology.SLIT[0][1])
	}
}

func TestPageTableWithWorkloadAccessTrace(t *testing.T) {
	// Drive the hypervisor's access bits with a realistic Zipf access
	// stream: a skewed workload leaves cold pages untouched, and the
	// scan picture converges as accesses accumulate.
	w, ok := workload.ByName("gapbs-bc-twitter")
	if !ok {
		t.Fatal("missing workload")
	}
	pt := NewPageTable(16) // 256 pages of 64 MB
	r := stats.NewRand(3)
	trace := w.AccessTrace(pt.Pages(), 400, r)
	for _, page := range trace {
		pt.Touch(float64(page) * PageMB / 1024)
	}
	untouched := pt.UntouchedFrac()
	if untouched <= 0 || untouched >= 1 {
		t.Fatalf("untouched = %v; a skewed trace should leave cold pages", untouched)
	}
	// The analytic expectation should be in the same ballpark as the
	// simulated scan.
	want := 1 - w.TouchedPagesFrac(pt.Pages(), 400)
	if diff := untouched - want; diff > 0.15 || diff < -0.15 {
		t.Fatalf("untouched %v far from analytic %v", untouched, want)
	}
}
