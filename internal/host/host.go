package host

import (
	"errors"
	"fmt"

	"pond/internal/cluster"
	"pond/internal/emc"
	"pond/internal/pool"
)

// ReconfigSecPerGB is the cost of Pond's one-time memory reconfiguration:
// disabling the virtualization accelerator, copying pool memory to local
// DRAM, and re-enabling — about 50 ms per GB of pool memory (§4.2).
const ReconfigSecPerGB = 0.050

// CommitOverestimate inflates the guest-committed memory counter relative
// to truly touched memory; the paper notes the counter "overestimates
// used memory" (§4.2).
const CommitOverestimate = 1.15

// Errors returned by placement operations.
var (
	ErrNoCapacity     = errors.New("host: insufficient NUMA-node capacity")
	ErrNoPoolCapacity = errors.New("host: insufficient online pool memory")
	ErrUnknownVM      = errors.New("host: unknown VM")
	ErrPartition      = errors.New("host: pool partition is hypervisor-only")
)

// noCapacityError is the rejection PlaceVM returns when no NUMA node
// fits. The scheduler probes hosts until one accepts, so rejections are
// routine on a loaded fleet; rendering the message lazily keeps each
// probe to a single allocation where fmt.Errorf pays several.
type noCapacityError struct {
	id      cluster.VMID
	cores   int
	localGB float64
}

func (e *noCapacityError) Error() string {
	return fmt.Sprintf("%v: VM %d needs %d cores / %g GB local", ErrNoCapacity, e.id, e.cores, e.localGB)
}

func (e *noCapacityError) Unwrap() error { return ErrNoCapacity }

// Placement records where one VM's resources live.
type Placement struct {
	VM      cluster.VMRequest
	Node    int     // physical NUMA node hosting cores and local memory
	LocalGB float64 // socket-local DRAM
	PoolGB  float64 // pool DRAM behind the zNUMA node
	Slices  []pool.SliceRef

	// Topology is the guest-visible vNUMA/zNUMA layout.
	Topology Topology

	// AccelEnabled tracks the virtualization accelerator state; it is
	// only disabled transiently during reconfiguration (G2).
	AccelEnabled bool

	// Reconfigured is set after the one-time pool-to-local migration.
	Reconfigured bool

	// SpannedGB is local memory sourced from the remote socket when the
	// placement had to span NUMA nodes (rare; §3.1).
	SpannedGB float64
	// SpanNode is the node providing SpannedGB (-1 when not spanning).
	SpanNode int

	// PageTable carries access bits when telemetry is enabled.
	PageTable *PageTable
}

// IsSpanning reports whether the placement crosses NUMA nodes.
func (p *Placement) IsSpanning() bool { return p.SpannedGB > 0 }

// Config controls optional host behaviour.
type Config struct {
	// PoolLatencyRatio sets the SLIT distance guests see for zNUMA.
	PoolLatencyRatio float64

	// EnablePageTables allocates per-VM access-bit tracking. The
	// cluster simulator disables it for speed; the zNUMA experiments
	// enable it.
	EnablePageTables bool

	// AllowSpanning lets a VM keep all cores on one socket while
	// sourcing part of its local memory from the other socket when no
	// single node has room. The paper observes this for 2-3% of VMs
	// and under 1% of memory pages (§3.1 "NUMA spanning").
	AllowSpanning bool

	// SkipGuestTopology leaves Placement.Topology zero instead of
	// building the vNUMA/zNUMA SRAT/SLIT view on every placement. The
	// fleet simulator sets it — its event loop never boots guests, so
	// the per-placement topology (several slice allocations per VM)
	// would be pure garbage. Facades that hand placements to
	// internal/guest must leave it off.
	SkipGuestTopology bool
}

// numaNode is the host-side accounting for one physical socket.
type numaNode struct {
	coresFree int
	memFreeGB float64
}

// Host is one dual-socket server participating in a Pond pool.
type Host struct {
	ID   emc.HostID
	Spec cluster.ServerSpec
	cfg  Config

	nodes []numaNode

	// Pool memory online on this host, split into the hypervisor-only
	// partition (usable for VM zNUMA backing) — Pond's fragmentation
	// containment (§4.2): host agents and drivers may only allocate
	// from local memory, so 1 GB slices stay whole and offlinable.
	poolFreeGB   float64
	poolOnlineGB float64

	vms map[cluster.VMID]*Placement

	// free recycles Placement records between ReleaseVM and the next
	// PlaceVM (see RecyclePlacement); the fleet loop drains it so
	// steady-state admission allocates nothing.
	free []*Placement
}

// New creates a host with all cores and memory free.
func New(id emc.HostID, spec cluster.ServerSpec, cfg Config) *Host {
	if cfg.PoolLatencyRatio == 0 {
		cfg.PoolLatencyRatio = 1.82
	}
	h := &Host{ID: id, Spec: spec, cfg: cfg, vms: make(map[cluster.VMID]*Placement)}
	h.nodes = make([]numaNode, spec.Sockets)
	for i := range h.nodes {
		h.nodes[i] = numaNode{coresFree: spec.CoresPerSock, memFreeGB: spec.MemGBPerSock}
	}
	return h
}

// AddPoolCapacity onlines pool slices delivered by the Pool Manager into
// the hypervisor-only partition.
func (h *Host) AddPoolCapacity(gb float64) {
	h.poolFreeGB += gb
	h.poolOnlineGB += gb
}

// RemovePoolCapacity offlines unused pool memory (before handing the
// slices back to the Pool Manager). It fails if the memory is in use.
func (h *Host) RemovePoolCapacity(gb float64) error {
	if gb > h.poolFreeGB+1e-9 {
		return fmt.Errorf("%w: %g GB requested, %g free", ErrNoPoolCapacity, gb, h.poolFreeGB)
	}
	h.poolFreeGB -= gb
	h.poolOnlineGB -= gb
	return nil
}

// AllocateHostAgent models a host agent or driver allocation. Such
// allocations are forced into host-local memory — never the pool
// partition — so they cannot fragment 1 GB slices (§4.2).
func (h *Host) AllocateHostAgent(gb float64, fromPool bool) error {
	if fromPool {
		return ErrPartition
	}
	for i := range h.nodes {
		if h.nodes[i].memFreeGB >= gb {
			h.nodes[i].memFreeGB -= gb
			return nil
		}
	}
	return ErrNoCapacity
}

// PlaceVM admits a VM with the given local/pool split. The VM's cores and
// local memory land on a single NUMA node (the paper: almost all VMs fit
// one node); pool memory comes from the hypervisor partition and surfaces
// as a zNUMA node in the guest topology.
func (h *Host) PlaceVM(vm cluster.VMRequest, localGB, poolGB float64, slices []pool.SliceRef) (*Placement, error) {
	if localGB+poolGB < vm.Type.MemoryGB-1e-9 {
		return nil, fmt.Errorf("host: allocation %g+%g GB under VM size %g", localGB, poolGB, vm.Type.MemoryGB)
	}
	if _, exists := h.vms[vm.ID]; exists {
		return nil, fmt.Errorf("host: VM %d already placed", vm.ID)
	}
	if poolGB > h.poolFreeGB+1e-9 {
		return nil, fmt.Errorf("%w: need %g GB, have %g", ErrNoPoolCapacity, poolGB, h.poolFreeGB)
	}
	node := -1
	for i := range h.nodes {
		if h.nodes[i].coresFree >= vm.Type.Cores && h.nodes[i].memFreeGB >= localGB {
			node = i
			break
		}
	}
	spannedGB := 0.0
	spanNode := -1
	if node < 0 && h.cfg.AllowSpanning {
		// Spanning fallback: cores on the node that has them, with the
		// memory shortfall sourced from the other node.
		for i := range h.nodes {
			if h.nodes[i].coresFree < vm.Type.Cores {
				continue
			}
			shortfall := localGB - h.nodes[i].memFreeGB
			if shortfall <= 0 {
				continue
			}
			for j := range h.nodes {
				if j != i && h.nodes[j].memFreeGB >= shortfall {
					node, spanNode = i, j
					spannedGB = shortfall
					break
				}
			}
			if node >= 0 {
				break
			}
		}
	}
	if node < 0 {
		return nil, &noCapacityError{id: vm.ID, cores: vm.Type.Cores, localGB: localGB}
	}
	h.nodes[node].coresFree -= vm.Type.Cores
	h.nodes[node].memFreeGB -= localGB - spannedGB
	if spanNode >= 0 {
		h.nodes[spanNode].memFreeGB -= spannedGB
	}
	h.poolFreeGB -= poolGB

	p := h.newPlacement()
	*p = Placement{
		VM:           vm,
		Node:         node,
		LocalGB:      localGB,
		PoolGB:       poolGB,
		Slices:       slices,
		AccelEnabled: true,
		SpannedGB:    spannedGB,
		SpanNode:     spanNode,
	}
	if !h.cfg.SkipGuestTopology {
		p.Topology = NewTopology(vm.Type.Cores, localGB, poolGB, h.cfg.PoolLatencyRatio)
	}
	if h.cfg.EnablePageTables {
		p.PageTable = NewPageTable(vm.Type.MemoryGB)
	}
	h.vms[vm.ID] = p
	return p, nil
}

// newPlacement takes a record from the host freelist, or allocates one.
func (h *Host) newPlacement() *Placement {
	if n := len(h.free); n > 0 {
		p := h.free[n-1]
		h.free = h.free[:n-1]
		return p
	}
	return &Placement{}
}

// RecyclePlacement returns a released placement to the host's freelist
// so the next PlaceVM reuses it. Call it only after every read of a
// ReleaseVM result is done — the record's contents are overwritten by
// the next admission. Callers that retain placements (the single-VM
// facades) simply never recycle.
func (h *Host) RecyclePlacement(p *Placement) {
	if p == nil {
		return
	}
	h.free = append(h.free, p)
}

// ReleaseVM frees a departed VM's resources and returns its pool slices
// for the Pool Manager's asynchronous release.
func (h *Host) ReleaseVM(id cluster.VMID) (*Placement, error) {
	p, ok := h.vms[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownVM, id)
	}
	delete(h.vms, id)
	h.nodes[p.Node].coresFree += p.VM.Type.Cores
	h.nodes[p.Node].memFreeGB += p.LocalGB - p.SpannedGB
	if p.SpanNode >= 0 {
		h.nodes[p.SpanNode].memFreeGB += p.SpannedGB
	}
	h.poolFreeGB += p.PoolGB // freed into the partition until offlined
	return p, nil
}

// Reconfigure performs the one-time mitigation (§4.2): if local memory is
// available, the hypervisor disables the accelerator, copies the VM's
// pool memory into local DRAM, and re-enables acceleration. It returns
// the copy duration (~50 ms/GB) and the freed pool capacity.
func (h *Host) Reconfigure(id cluster.VMID) (durationSec, freedPoolGB float64, err error) {
	p, ok := h.vms[id]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownVM, id)
	}
	if p.Reconfigured {
		return 0, 0, fmt.Errorf("host: VM %d already reconfigured; the mitigation is one-time", id)
	}
	if p.PoolGB == 0 {
		return 0, 0, nil
	}
	if h.nodes[p.Node].memFreeGB < p.PoolGB {
		return 0, 0, fmt.Errorf("%w: reconfiguration needs %g GB local", ErrNoCapacity, p.PoolGB)
	}
	moved := p.PoolGB
	p.AccelEnabled = false
	h.nodes[p.Node].memFreeGB -= moved
	h.poolFreeGB += moved
	p.LocalGB += moved
	p.PoolGB = 0
	p.Reconfigured = true
	if !h.cfg.SkipGuestTopology {
		p.Topology = NewTopology(p.VM.Type.Cores, p.LocalGB, 0, h.cfg.PoolLatencyRatio)
	}
	p.AccelEnabled = true
	return moved * ReconfigSecPerGB, moved, nil
}

// Placement returns the placement of a VM.
func (h *Host) Placement(id cluster.VMID) (*Placement, bool) {
	p, ok := h.vms[id]
	return p, ok
}

// VMs returns the ids of all resident VMs.
func (h *Host) VMs() []cluster.VMID {
	out := make([]cluster.VMID, 0, len(h.vms))
	for id := range h.vms {
		out = append(out, id)
	}
	return out
}

// FreeCores returns total free cores across nodes.
func (h *Host) FreeCores() int {
	n := 0
	for _, nd := range h.nodes {
		n += nd.coresFree
	}
	return n
}

// FreeLocalGB returns total free socket-local memory.
func (h *Host) FreeLocalGB() float64 {
	var g float64
	for _, nd := range h.nodes {
		g += nd.memFreeGB
	}
	return g
}

// FreePoolGB returns unused online pool memory.
func (h *Host) FreePoolGB() float64 { return h.poolFreeGB }

// OnlinePoolGB returns total pool memory online on this host.
func (h *Host) OnlinePoolGB() float64 { return h.poolOnlineGB }

// StrandedGB returns the local memory stranded on this host: free memory
// on NUMA nodes whose cores are fully allocated — technically rentable,
// practically not (§2).
func (h *Host) StrandedGB() float64 {
	var g float64
	for _, nd := range h.nodes {
		if nd.coresFree == 0 {
			g += nd.memFreeGB
		}
	}
	return g
}

// GuestCommittedGB returns the guest-committed memory counter for a VM:
// an overestimate of touched memory, capped at the VM size (§4.2).
func (h *Host) GuestCommittedGB(id cluster.VMID) (float64, error) {
	p, ok := h.vms[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownVM, id)
	}
	touched := p.VM.TouchedGB() * CommitOverestimate
	if touched > p.VM.Type.MemoryGB {
		touched = p.VM.Type.MemoryGB
	}
	return touched, nil
}

// VMsOnSlices returns VMs whose pool memory intersects the given EMC
// index — the blast radius of that EMC's failure.
func (h *Host) VMsOnSlices(emcIndex int) []cluster.VMID {
	var out []cluster.VMID
	for id, p := range h.vms {
		for _, ref := range p.Slices {
			if ref.EMC == emcIndex {
				out = append(out, id)
				break
			}
		}
	}
	return out
}
