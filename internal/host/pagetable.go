package host

// PageTable models the hypervisor (second-level) page table of one VM,
// at the granularity Pond's telemetry needs: access bits per region,
// scanned and reset every 30 minutes at ~10 s per full scan (§5).
//
// Pond only needs to find pages that were never touched, so infrequent
// resets suffice and the scan overhead stays negligible.

// PageMB is the tracking granularity. Coarse 64 MB regions keep the
// table small (a 128 GB VM needs 2048 entries) while still resolving the
// untouched-memory fractions the model consumes.
const PageMB = 64

// Scan cadence constants from §5.
const (
	ScanIntervalSec = 30 * 60
	ScanCostSec     = 10.0
)

// PageTable tracks access and ever-accessed bits for a VM's memory.
type PageTable struct {
	accessed []bool // current access bits (reset by scans)
	everSet  []bool // whether the access bit was ever set since VM start
	scans    int
}

// NewPageTable creates a table covering memGB of guest memory.
func NewPageTable(memGB float64) *PageTable {
	pages := int(memGB*1024+PageMB-1) / PageMB
	if pages < 1 {
		pages = 1
	}
	return &PageTable{
		accessed: make([]bool, pages),
		everSet:  make([]bool, pages),
	}
}

// Pages returns the number of tracked regions.
func (pt *PageTable) Pages() int { return len(pt.accessed) }

// Touch marks the page containing the given GB offset accessed.
func (pt *PageTable) Touch(offsetGB float64) {
	idx := int(offsetGB * 1024 / PageMB)
	if idx < 0 || idx >= len(pt.accessed) {
		return
	}
	pt.accessed[idx] = true
	pt.everSet[idx] = true
}

// TouchRange marks [startGB, endGB) accessed.
func (pt *PageTable) TouchRange(startGB, endGB float64) {
	lo := int(startGB * 1024 / PageMB)
	hi := int(endGB * 1024 / PageMB)
	if lo < 0 {
		lo = 0
	}
	if hi > len(pt.accessed) {
		hi = len(pt.accessed)
	}
	for i := lo; i < hi; i++ {
		pt.accessed[i] = true
		pt.everSet[i] = true
	}
}

// Scan reads and resets the access bits, returning the fraction of pages
// accessed since the last scan. This is the 30-minute telemetry pass.
func (pt *PageTable) Scan() (accessedFrac float64) {
	n := 0
	for i, a := range pt.accessed {
		if a {
			n++
			pt.accessed[i] = false
		}
	}
	pt.scans++
	return float64(n) / float64(len(pt.accessed))
}

// Scans returns how many scans have run.
func (pt *PageTable) Scans() int { return pt.scans }

// UntouchedFrac returns the fraction of pages whose access bit was never
// set since VM start — the label source for the untouched-memory model
// (Figure 14).
func (pt *PageTable) UntouchedFrac() float64 {
	n := 0
	for _, e := range pt.everSet {
		if !e {
			n++
		}
	}
	return float64(n) / float64(len(pt.everSet))
}

// AccessBitmap returns a copy of the ever-accessed bitmap (Figure 15's
// access-bit visualisation).
func (pt *PageTable) AccessBitmap() []bool {
	return append([]bool(nil), pt.everSet...)
}
