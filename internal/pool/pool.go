// Package pool implements Pond's Pool Manager (§4.2, Figure 9): the
// control entity, colocated with the EMCs, that assigns 1 GB memory
// slices to hosts on VM arrival and reclaims them after VM departure.
//
// Two timing asymmetries drive the design, both measured in the paper:
// onlining a slice on a host is near-instantaneous (microseconds per GB),
// while offlining takes 10–100 ms per GB. Pond therefore releases
// capacity asynchronously — departed VMs' slices drain back into the free
// pool in the background — and keeps a buffer of unallocated pool memory
// so VM starts never wait on offlining (Finding 10: the offlining rate
// needed stays below 1 GB/s for 99.99% of VM starts).
//
// The manager operates in simulated time: callers pass the current time
// to each operation, which lets the cluster simulator drive thousands of
// days of pool activity deterministically.
package pool

import (
	"fmt"
	"sort"

	"pond/internal/emc"
	"pond/internal/stats"
)

// Timing constants (§4.2).
const (
	// OnlineSecPerGB: onlining is "near instantaneous with
	// microseconds/GB".
	OnlineSecPerGB = 20e-6

	// Offline timing: "offlining 1GB slices empirically takes 10-100
	// milliseconds/GB".
	OfflineMinSecPerGB = 0.010
	OfflineMaxSecPerGB = 0.100
)

// SliceRef names one slice on one EMC.
type SliceRef struct {
	EMC   int // index into the manager's device list
	Slice emc.SliceID
}

// AddResult reports a completed add_capacity operation.
type AddResult struct {
	Slices []SliceRef
	// OnlineLatencySec is how long the host driver took to online the
	// slices (charged to, but not blocking, the VM start path).
	OnlineLatencySec float64
	// WaitedSec is how long the request had to wait for pending
	// offlines to drain because the free buffer was short. Zero for the
	// common, buffer-satisfied case.
	WaitedSec float64
	// RequiredOfflineRate is the offline throughput (GB/s) that had to
	// materialize for this start; 0 when served from the buffer
	// (Finding 10's metric).
	RequiredOfflineRate float64
}

// pendingRelease is a slice being offlined on its old host.
type pendingRelease struct {
	ref      SliceRef
	host     emc.HostID
	readySec float64
}

// Manager is the Pool Manager.
type Manager struct {
	emcs []*emc.Device
	r    *stats.Rand

	// conn[h] lists the device indices host h is physically cabled to;
	// nil means every host reaches every EMC (the flat pool group of the
	// paper). AddCapacity only assigns slices a host can actually decode.
	conn [][]int

	pending []pendingRelease // sorted by readySec

	// startRates records RequiredOfflineRate per AddCapacity call, the
	// distribution behind Finding 10.
	startRates []float64

	onlineOps  int64
	releaseOps int64

	// flat caches the all-devices index list for flat connectivity and
	// orderScratch holds AddCapacity's fill-order sort between calls; the
	// device set never changes size after construction, so both are pure
	// reuse — AddCapacity's steady state allocates nothing.
	flat         []int
	orderScratch []int
}

// NewManager creates a Pool Manager over the given EMCs with flat
// connectivity (every host reaches every device). The RNG drives the
// per-operation offline duration draw.
func NewManager(emcs []*emc.Device, r *stats.Rand) *Manager {
	return NewManagerTopo(emcs, nil, r)
}

// NewManagerTopo creates a Pool Manager with an explicit host-to-EMC
// connectivity graph: conn[h] lists the device indices host h reaches
// (see internal/topo). A nil conn means flat connectivity.
func NewManagerTopo(emcs []*emc.Device, conn [][]int, r *stats.Rand) *Manager {
	if len(emcs) == 0 {
		panic("pool: manager needs at least one EMC")
	}
	for h, devs := range conn {
		for _, di := range devs {
			if di < 0 || di >= len(emcs) {
				panic(fmt.Sprintf("pool: host %d wired to EMC %d of %d", h, di, len(emcs)))
			}
		}
	}
	return &Manager{emcs: emcs, conn: conn, r: r}
}

// devicesFor returns the device indices host h can reach, in index order.
func (m *Manager) devicesFor(h emc.HostID) []int {
	if m.conn != nil && int(h) >= 0 && int(h) < len(m.conn) {
		return m.conn[h]
	}
	if m.flat == nil {
		m.flat = make([]int, len(m.emcs))
		for i := range m.flat {
			m.flat[i] = i
		}
	}
	return m.flat
}

// reaches reports whether host h is cabled to device di.
func (m *Manager) reaches(h emc.HostID, di int) bool {
	if m.conn == nil || int(h) < 0 || int(h) >= len(m.conn) {
		return true
	}
	for _, d := range m.conn[h] {
		if d == di {
			return true
		}
	}
	return false
}

// PoolGB returns the total pool capacity across EMCs.
func (m *Manager) PoolGB() int {
	total := 0
	for _, d := range m.emcs {
		total += d.CapacityGB()
	}
	return total
}

// FreeGB returns the immediately assignable capacity at the given time
// (pending offlines that have completed are drained first).
func (m *Manager) FreeGB(now float64) int {
	m.drain(now)
	free := 0
	for _, d := range m.emcs {
		free += d.FreeSlices() * emc.SliceGB
	}
	return free
}

// FreeGBFor returns the immediately assignable capacity reachable from
// host h — under sparse topologies a strict subset of FreeGB.
func (m *Manager) FreeGBFor(h emc.HostID, now float64) int {
	m.drain(now)
	free := 0
	for _, di := range m.devicesFor(h) {
		free += m.emcs[di].FreeSlices() * emc.SliceGB
	}
	return free
}

// PendingGB returns capacity still draining through offline.
func (m *Manager) PendingGB(now float64) int {
	m.drain(now)
	return len(m.pending) * emc.SliceGB
}

// drain completes all pending releases whose offline finished by now.
func (m *Manager) drain(now float64) {
	i := 0
	for ; i < len(m.pending); i++ {
		p := m.pending[i]
		if p.readySec > now {
			break
		}
		// Release back to the device's free pool; an error here means
		// the device failed mid-offline, in which case the slice is
		// gone with the device and dropping it is correct.
		_ = m.emcs[p.ref.EMC].Release(p.ref.Slice, p.host)
	}
	m.pending = m.pending[i:]
}

// AddCapacity implements the add_capacity(host, slice) flow: pick gb
// worth of free slices, assign them to the host on the EMC, and notify
// the host driver to online them. If the free buffer is short the request
// waits for the earliest pending offlines — the case Finding 10 shows is
// vanishingly rare with a sane buffer.
func (m *Manager) AddCapacity(h emc.HostID, gb int, now float64) (AddResult, error) {
	if gb <= 0 {
		return AddResult{}, fmt.Errorf("pool: non-positive capacity request %d GB", gb)
	}
	m.drain(now)

	res := AddResult{}
	need := gb / emc.SliceGB

	if free := m.FreeGBFor(h, now); free < gb {
		// Wait for pending offlines on reachable EMCs to cover the
		// shortfall.
		shortfall := gb - free
		covered := 0
		var waitUntil float64
		for _, p := range m.pending {
			// Pending slices on unreachable or failed devices will never
			// become assignable capacity for this host.
			if !m.reaches(h, p.ref.EMC) || m.emcs[p.ref.EMC].Failed() {
				continue
			}
			covered += emc.SliceGB
			if covered >= shortfall {
				waitUntil = p.readySec
				break
			}
		}
		if covered < shortfall {
			return AddResult{}, fmt.Errorf("pool: %d GB requested, %d free and %d draining reachable from host %d",
				gb, free, covered, h)
		}
		res.WaitedSec = waitUntil - now
		if res.WaitedSec > 0 {
			res.RequiredOfflineRate = float64(shortfall) / res.WaitedSec
		}
		now = waitUntil
		m.drain(now)
	}
	m.startRates = append(m.startRates, res.RequiredOfflineRate)

	// Among the EMCs this host reaches, prefer filling from the one with
	// the most free slices: keeps each VM's pool memory on one EMC,
	// minimizing failure blast radius.
	order := append(m.orderScratch[:0], m.devicesFor(h)...)
	m.orderScratch = order
	sort.Slice(order, func(a, b int) bool {
		fa, fb := m.emcs[order[a]].FreeSlices(), m.emcs[order[b]].FreeSlices()
		if fa != fb {
			return fa > fb
		}
		return order[a] < order[b]
	})
	for _, di := range order {
		if need == 0 {
			break
		}
		d := m.emcs[di]
		take := d.FreeSlices()
		if take > need {
			take = need
		}
		if take == 0 {
			continue
		}
		slices, err := d.AssignAny(take, h)
		if err != nil {
			continue // failed EMC: try the next one
		}
		for _, s := range slices {
			res.Slices = append(res.Slices, SliceRef{EMC: di, Slice: s})
		}
		need -= take
	}
	if need > 0 {
		// Roll back partial assignment; the free pool shrank between
		// drain and assign (possible only with concurrent use).
		for _, ref := range res.Slices {
			_ = m.emcs[ref.EMC].Release(ref.Slice, h)
		}
		return AddResult{}, fmt.Errorf("pool: assignment raced; %d GB short", need)
	}
	res.OnlineLatencySec = float64(gb) * OnlineSecPerGB
	m.onlineOps++
	return res, nil
}

// ReleaseCapacity implements release_capacity: the host offlines each
// slice (10–100 ms/GB, drawn per operation) and the slice re-enters the
// free pool when the offline completes. The call itself returns
// immediately — this is the asynchronous release strategy of Figure 9.
func (m *Manager) ReleaseCapacity(h emc.HostID, refs []SliceRef, now float64) {
	for _, ref := range refs {
		perGB := m.r.Bounded(OfflineMinSecPerGB, OfflineMaxSecPerGB)
		m.pending = append(m.pending, pendingRelease{
			ref:      ref,
			host:     h,
			readySec: now + perGB*float64(emc.SliceGB),
		})
	}
	sort.Slice(m.pending, func(i, j int) bool { return m.pending[i].readySec < m.pending[j].readySec })
	m.releaseOps++
}

// GrowEMC adds gb of active capacity to one device (the elastic-pool
// grow path and the resize@… injection). Growth is near-instantaneous —
// fresh slices come up unowned and assignable, like onlining.
func (m *Manager) GrowEMC(di, gb int) error {
	if di < 0 || di >= len(m.emcs) {
		return fmt.Errorf("pool: grow targets EMC %d of %d", di, len(m.emcs))
	}
	return m.emcs[di].Grow(gb)
}

// ShrinkEMC retires up to gb of free capacity on one device, returning
// the GB actually retired. Slices assigned to hosts — live or draining —
// are never revoked, so a shrink can fall short; callers re-request at
// the next planning round once departures have drained capacity back.
func (m *Manager) ShrinkEMC(di, gb int, now float64) (int, error) {
	if di < 0 || di >= len(m.emcs) {
		return 0, fmt.Errorf("pool: shrink targets EMC %d of %d", di, len(m.emcs))
	}
	if gb <= 0 {
		return 0, fmt.Errorf("pool: non-positive shrink %d GB", gb)
	}
	m.drain(now)
	return m.emcs[di].Retire(gb/emc.SliceGB) * emc.SliceGB, nil
}

// Grow spreads gb of new capacity across healthy devices, smallest
// active capacity first (ties by index), one slice at a time — growth
// rebalances the pool toward evenly-sized devices so every topology pod
// gains headroom. It returns the GB added (short only when every device
// has failed).
func (m *Manager) Grow(gb int) int {
	need := gb / emc.SliceGB
	caps := make([]int, len(m.emcs))
	alive := 0
	for i, d := range m.emcs {
		caps[i] = d.CapacityGB()
		if !d.Failed() {
			alive++
		}
	}
	if alive == 0 {
		return 0
	}
	added := 0
	for ; need > 0; need-- {
		best := -1
		for i, d := range m.emcs {
			if d.Failed() {
				continue
			}
			if best < 0 || caps[i] < caps[best] {
				best = i
			}
		}
		if err := m.emcs[best].Grow(emc.SliceGB); err != nil {
			break
		}
		caps[best] += emc.SliceGB
		added += emc.SliceGB
	}
	return added
}

// Shrink retires up to gb of free capacity across devices, taking one
// slice at a time from the device with the most free slices (ties by
// index). Levelling the shrink this way respects topology reachability:
// no device is drained to empty while its neighbours stay fat, so hosts
// wired to a strict subset of EMCs keep proportional headroom. Assigned
// and draining slices are never revoked — live VMs cannot be stranded by
// a shrink — so the result may fall short of the request; it returns the
// GB actually retired.
func (m *Manager) Shrink(gb int, now float64) int {
	m.drain(now)
	need := gb / emc.SliceGB
	free := make([]int, len(m.emcs))
	for i, d := range m.emcs {
		free[i] = d.FreeSlices()
	}
	retired := 0
	for ; need > 0; need-- {
		best := -1
		for i := range m.emcs {
			if free[i] == 0 {
				continue
			}
			if best < 0 || free[i] > free[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if m.emcs[best].Retire(1) == 0 {
			break
		}
		free[best]--
		retired += emc.SliceGB
	}
	return retired
}

// AssignedGB returns the capacity not immediately assignable: slices
// held by hosts, draining through pending release, or lost to failed
// devices — the floor below which a shrink cannot reach.
func (m *Manager) AssignedGB(now float64) int {
	return m.PoolGB() - m.FreeGB(now)
}

// RetiredGB returns the capacity decommissioned by shrinks and not yet
// re-activated by a grow.
func (m *Manager) RetiredGB() int {
	total := 0
	for _, d := range m.emcs {
		total += d.RetiredSlices() * emc.SliceGB
	}
	return total
}

// ReclaimHost handles a host failure (§4.2): every slice the dead host
// owned — online, in use, or draining — returns to the free pool
// immediately, since the host can no longer run the offline protocol.
// It returns the total capacity reclaimed.
func (m *Manager) ReclaimHost(h emc.HostID) int {
	// Drop the dead host's pending releases; their slices are force
	// released below.
	kept := m.pending[:0]
	for _, p := range m.pending {
		if p.host != h {
			kept = append(kept, p)
		}
	}
	m.pending = kept
	reclaimed := 0
	for _, d := range m.emcs {
		reclaimed += len(d.ForceReleaseAll(h)) * emc.SliceGB
	}
	return reclaimed
}

// StartRates returns the per-VM-start required offline rates (GB/s)
// recorded so far; the Finding 10 experiment summarizes this.
func (m *Manager) StartRates() []float64 {
	return append([]float64(nil), m.startRates...)
}

// Ops returns operation counters (onlines, releases).
func (m *Manager) Ops() (online, release int64) { return m.onlineOps, m.releaseOps }
