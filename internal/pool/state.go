package pool

import (
	"fmt"

	"pond/internal/emc"
	"pond/internal/stats"
)

// PendingState is one in-flight release_capacity offline.
type PendingState struct {
	EMC      int         `json:"emc"`
	Slice    emc.SliceID `json:"slice"`
	Host     emc.HostID  `json:"host"`
	ReadySec float64     `json:"ready_sec"`
}

// State is the serializable dynamic state of the Pool Manager: the
// offline-drain queue with its completion times, the per-start offline
// rates behind Finding 10, the op counters, and the RNG that draws each
// offline duration. Device wiring (emcs, conn) is configuration and is
// rebuilt by the restoring caller; the scratch buffers are pure caches
// and restore empty.
type State struct {
	Pending    []PendingState  `json:"pending,omitempty"`
	StartRates []float64       `json:"start_rates,omitempty"`
	OnlineOps  int64           `json:"online_ops,omitempty"`
	ReleaseOps int64           `json:"release_ops,omitempty"`
	RNG        stats.RandState `json:"rng"`
}

// State captures the manager's current state for serialization.
func (m *Manager) State() State {
	s := State{
		StartRates: append([]float64(nil), m.startRates...),
		OnlineOps:  m.onlineOps,
		ReleaseOps: m.releaseOps,
		RNG:        m.r.State(),
	}
	for _, p := range m.pending {
		s.Pending = append(s.Pending, PendingState{
			EMC: p.ref.EMC, Slice: p.ref.Slice, Host: p.host, ReadySec: p.readySec,
		})
	}
	return s
}

// SetState restores a state captured by State onto a freshly built
// manager over the same device set.
func (m *Manager) SetState(s State) error {
	if err := m.r.SetState(s.RNG); err != nil {
		return fmt.Errorf("pool: %w", err)
	}
	m.pending = m.pending[:0]
	for _, p := range s.Pending {
		if p.EMC < 0 || p.EMC >= len(m.emcs) {
			return fmt.Errorf("pool: pending release on EMC %d of %d", p.EMC, len(m.emcs))
		}
		m.pending = append(m.pending, pendingRelease{
			ref:      SliceRef{EMC: p.EMC, Slice: p.Slice},
			host:     p.Host,
			readySec: p.ReadySec,
		})
	}
	m.startRates = append(m.startRates[:0], s.StartRates...)
	m.onlineOps = s.OnlineOps
	m.releaseOps = s.ReleaseOps
	return nil
}
