package pool

import (
	"strings"
	"testing"

	"pond/internal/emc"
	"pond/internal/stats"
)

func newManager(t *testing.T, emcGB ...int) *Manager {
	t.Helper()
	devs := make([]*emc.Device, len(emcGB))
	for i, gb := range emcGB {
		devs[i] = emc.NewDevice("emc", gb, 16)
	}
	return NewManager(devs, stats.NewRand(1))
}

func TestNewManagerPanicsWithoutEMCs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManager(nil, stats.NewRand(1))
}

func TestPoolGB(t *testing.T) {
	m := newManager(t, 64, 64)
	if m.PoolGB() != 128 {
		t.Fatalf("PoolGB = %d", m.PoolGB())
	}
	if m.FreeGB(0) != 128 {
		t.Fatalf("FreeGB = %d", m.FreeGB(0))
	}
}

func TestAddCapacityFastPath(t *testing.T) {
	m := newManager(t, 64)
	res, err := m.AddCapacity(1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) != 8 {
		t.Fatalf("slices = %d, want 8", len(res.Slices))
	}
	if res.WaitedSec != 0 || res.RequiredOfflineRate != 0 {
		t.Fatalf("buffer-satisfied start should not wait: %+v", res)
	}
	if res.OnlineLatencySec <= 0 || res.OnlineLatencySec > 0.001 {
		t.Fatalf("online latency %v should be microseconds/GB", res.OnlineLatencySec)
	}
	if m.FreeGB(0) != 56 {
		t.Fatalf("free = %d, want 56", m.FreeGB(0))
	}
}

func TestAddCapacityRejectsBadRequest(t *testing.T) {
	m := newManager(t, 16)
	if _, err := m.AddCapacity(0, 0, 0); err == nil {
		t.Fatal("zero GB accepted")
	}
	if _, err := m.AddCapacity(0, -4, 0); err == nil {
		t.Fatal("negative GB accepted")
	}
}

func TestAddCapacityExhausted(t *testing.T) {
	m := newManager(t, 8)
	if _, err := m.AddCapacity(0, 8, 0); err != nil {
		t.Fatal(err)
	}
	_, err := m.AddCapacity(1, 1, 0)
	if err == nil {
		t.Fatal("overcommitted pool accepted")
	}
	if !strings.Contains(err.Error(), "requested") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestAsynchronousRelease(t *testing.T) {
	m := newManager(t, 8)
	res, err := m.AddCapacity(0, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.ReleaseCapacity(0, res.Slices, 100)
	// Immediately after release, nothing is free yet: offline takes
	// 10-100 ms per GB.
	if free := m.FreeGB(100); free != 0 {
		t.Fatalf("free immediately after release = %d, want 0", free)
	}
	if pending := m.PendingGB(100); pending != 8 {
		t.Fatalf("pending = %d, want 8", pending)
	}
	// After a second, every slice (max 100 ms each) is back.
	if free := m.FreeGB(101); free != 8 {
		t.Fatalf("free after drain = %d, want 8", free)
	}
	if pending := m.PendingGB(101); pending != 0 {
		t.Fatalf("pending after drain = %d", pending)
	}
}

func TestOfflineDurationsWithinBounds(t *testing.T) {
	m := newManager(t, 32)
	res, _ := m.AddCapacity(0, 32, 0)
	m.ReleaseCapacity(0, res.Slices, 0)
	for _, p := range m.pending {
		perGB := p.readySec / float64(emc.SliceGB)
		if perGB < OfflineMinSecPerGB || perGB > OfflineMaxSecPerGB {
			t.Fatalf("offline %v s/GB outside [%v, %v]", perGB, OfflineMinSecPerGB, OfflineMaxSecPerGB)
		}
	}
}

func TestAddCapacityWaitsForPending(t *testing.T) {
	m := newManager(t, 8)
	res, _ := m.AddCapacity(0, 8, 0)
	m.ReleaseCapacity(0, res.Slices, 10)
	// Request at t=10 while everything is draining: must wait and
	// report the offline rate it depended on.
	res2, err := m.AddCapacity(1, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res2.WaitedSec <= 0 {
		t.Fatalf("expected a wait, got %+v", res2)
	}
	if res2.RequiredOfflineRate <= 0 {
		t.Fatalf("expected positive required offline rate, got %+v", res2)
	}
	if len(res2.Slices) != 4 {
		t.Fatalf("slices = %d", len(res2.Slices))
	}
}

func TestAddCapacityFailsWhenDrainInsufficient(t *testing.T) {
	m := newManager(t, 8)
	res, _ := m.AddCapacity(0, 4, 0)
	m.ReleaseCapacity(0, res.Slices, 0)
	// 4 free + 4 draining = 8 available; 9 must fail.
	if _, err := m.AddCapacity(1, 9, 0); err == nil {
		t.Fatal("request exceeding free+draining accepted")
	}
}

func TestBlastRadiusPreference(t *testing.T) {
	// With two EMCs, a VM-sized request should land on a single EMC
	// when one has room.
	m := newManager(t, 64, 64)
	res, err := m.AddCapacity(0, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	emcsUsed := map[int]bool{}
	for _, ref := range res.Slices {
		emcsUsed[ref.EMC] = true
	}
	if len(emcsUsed) != 1 {
		t.Fatalf("16 GB spread over %d EMCs; blast radius should prefer one", len(emcsUsed))
	}
}

func TestSpillsAcrossEMCsWhenNeeded(t *testing.T) {
	m := newManager(t, 8, 8)
	res, err := m.AddCapacity(0, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	emcsUsed := map[int]bool{}
	for _, ref := range res.Slices {
		emcsUsed[ref.EMC] = true
	}
	if len(emcsUsed) != 2 {
		t.Fatalf("12 GB on 8+8 pool used %d EMCs, want 2", len(emcsUsed))
	}
}

func TestFailedEMCSkipped(t *testing.T) {
	devs := []*emc.Device{
		emc.NewDevice("emc0", 32, 8),
		emc.NewDevice("emc1", 32, 8),
	}
	m := NewManager(devs, stats.NewRand(1))
	devs[0].Fail()
	res, err := m.AddCapacity(0, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range res.Slices {
		if ref.EMC == 0 {
			t.Fatal("assigned slice on failed EMC")
		}
	}
}

func TestStartRatesRecorded(t *testing.T) {
	m := newManager(t, 16)
	m.AddCapacity(0, 4, 0)
	m.AddCapacity(1, 4, 0)
	rates := m.StartRates()
	if len(rates) != 2 {
		t.Fatalf("recorded %d start rates, want 2", len(rates))
	}
	for _, r := range rates {
		if r != 0 {
			t.Fatalf("buffer-satisfied start recorded rate %v", r)
		}
	}
}

func TestStartRatesCopy(t *testing.T) {
	m := newManager(t, 16)
	m.AddCapacity(0, 4, 0)
	rates := m.StartRates()
	rates[0] = 99
	if m.StartRates()[0] == 99 {
		t.Fatal("StartRates aliases internal state")
	}
}

func TestOpsCounters(t *testing.T) {
	m := newManager(t, 16)
	res, _ := m.AddCapacity(0, 4, 0)
	m.ReleaseCapacity(0, res.Slices, 0)
	on, rel := m.Ops()
	if on != 1 || rel != 1 {
		t.Fatalf("ops = %d/%d, want 1/1", on, rel)
	}
}

func TestCapacityConservation(t *testing.T) {
	// free + assigned + pending == pool, across a random op sequence.
	m := newManager(t, 64)
	r := stats.NewRand(7)
	assigned := map[emc.HostID][]SliceRef{}
	totalAssigned := 0
	now := 0.0
	for i := 0; i < 400; i++ {
		now += r.Bounded(0, 0.5)
		h := emc.HostID(r.Intn(8))
		if r.Bernoulli(0.6) {
			gb := 1 + r.Intn(8)
			res, err := m.AddCapacity(h, gb, now)
			if err == nil {
				assigned[h] = append(assigned[h], res.Slices...)
				totalAssigned += gb
			}
		} else if len(assigned[h]) > 0 {
			n := 1 + r.Intn(len(assigned[h]))
			m.ReleaseCapacity(h, assigned[h][:n], now)
			assigned[h] = assigned[h][n:]
			totalAssigned -= n
		}
		free := m.FreeGB(now)
		pending := m.PendingGB(now)
		if free+pending+totalAssigned != 64 {
			t.Fatalf("iteration %d: %d free + %d pending + %d assigned != 64",
				i, free, pending, totalAssigned)
		}
	}
}

func TestFinding10MostStartsNeedNoOffline(t *testing.T) {
	// With a pool sized to typical churn, almost all VM starts are
	// served from the buffer: the required offline rate is 0 for the
	// overwhelming majority (Finding 10).
	m := newManager(t, 256)
	r := stats.NewRand(3)
	type lease struct {
		host emc.HostID
		refs []SliceRef
		end  float64
	}
	var live []lease
	now := 0.0
	for i := 0; i < 2000; i++ {
		now += r.Exponential(1.0)
		// Expire leases.
		var keep []lease
		for _, l := range live {
			if l.end <= now {
				m.ReleaseCapacity(l.host, l.refs, l.end)
			} else {
				keep = append(keep, l)
			}
		}
		live = keep
		gb := 1 + r.Intn(8)
		host := emc.HostID(r.Intn(16))
		res, err := m.AddCapacity(host, gb, now)
		if err != nil {
			continue
		}
		live = append(live, lease{
			host: host,
			refs: res.Slices,
			end:  now + r.Exponential(30),
		})
	}
	rates := m.StartRates()
	zero := 0
	for _, rate := range rates {
		if rate == 0 {
			zero++
		}
	}
	if frac := float64(zero) / float64(len(rates)); frac < 0.99 {
		t.Fatalf("only %.4f of starts buffer-satisfied, want >= 0.99 (Finding 10)", frac)
	}
}

func TestReclaimHostRecoversEverything(t *testing.T) {
	m := newManager(t, 32)
	res, err := m.AddCapacity(3, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half the slices are draining when the host dies.
	m.ReleaseCapacity(3, res.Slices[:4], 10)
	reclaimed := m.ReclaimHost(3)
	if reclaimed != 8 {
		t.Fatalf("reclaimed = %d GB, want 8 (online + draining)", reclaimed)
	}
	// Everything is immediately free: a dead host cannot run the
	// offline protocol, so the permission table is reset directly.
	if free := m.FreeGB(10); free != 32 {
		t.Fatalf("free = %d, want 32", free)
	}
	if m.PendingGB(10) != 0 {
		t.Fatal("dead host's drains still pending")
	}
}

func TestReclaimHostLeavesOthersAlone(t *testing.T) {
	m := newManager(t, 32)
	resA, _ := m.AddCapacity(1, 4, 0)
	resB, _ := m.AddCapacity(2, 4, 0)
	m.ReleaseCapacity(2, resB.Slices[:2], 5)
	if got := m.ReclaimHost(1); got != 4 {
		t.Fatalf("reclaimed = %d", got)
	}
	_ = resA
	// Host 2's live and draining slices are untouched.
	if free := m.FreeGB(5); free != 28 {
		t.Fatalf("free = %d, want 28 (host 2 still holds 2 live + 2 draining)", free)
	}
	if m.PendingGB(5) != 2 {
		t.Fatalf("pending = %d, want 2", m.PendingGB(5))
	}
}

func TestTopoAddCapacityRespectsConnectivity(t *testing.T) {
	devs := []*emc.Device{
		emc.NewDevice("emc0", 8, 4),
		emc.NewDevice("emc1", 64, 4),
	}
	// Host 0 reaches only emc0, host 1 only emc1.
	m := NewManagerTopo(devs, [][]int{{0}, {1}}, stats.NewRand(1))

	res, err := m.AddCapacity(0, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range res.Slices {
		if ref.EMC != 0 {
			t.Fatalf("host 0 got a slice on EMC %d, reaches only EMC 0", ref.EMC)
		}
	}
	// emc0 is now exhausted; host 0 cannot borrow from emc1 even though
	// it has plenty free.
	if _, err := m.AddCapacity(0, 8, 0); err == nil {
		t.Fatal("host 0 should not reach emc1's capacity")
	}
	if free := m.FreeGBFor(0, 0); free != 0 {
		t.Fatalf("FreeGBFor(0) = %d, want 0", free)
	}
	if free := m.FreeGBFor(1, 0); free != 64 {
		t.Fatalf("FreeGBFor(1) = %d, want 64", free)
	}
}

func TestTopoWaitOnlyCountsReachablePending(t *testing.T) {
	devs := []*emc.Device{
		emc.NewDevice("emc0", 4, 4),
		emc.NewDevice("emc1", 4, 4),
	}
	m := NewManagerTopo(devs, [][]int{{0}, {1}}, stats.NewRand(1))

	// Host 1 takes all of emc1 and releases it: 4 GB draining on emc1.
	res, err := m.AddCapacity(1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.ReleaseCapacity(1, res.Slices, 0)
	// Host 0 empties emc0 too.
	if _, err := m.AddCapacity(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	// Host 0 must not be able to wait for emc1's drains: they are
	// unreachable for it.
	if _, err := m.AddCapacity(0, 2, 0); err == nil {
		t.Fatal("host 0 waited for pending offlines on an unreachable EMC")
	}
	// Host 1 can wait for its own drains.
	got, err := m.AddCapacity(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.WaitedSec <= 0 {
		t.Fatalf("host 1 should have waited for its drains: %+v", got)
	}
}

func TestNewManagerTopoPanicsOnBadWiring(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManagerTopo([]*emc.Device{emc.NewDevice("emc0", 4, 2)}, [][]int{{1}}, stats.NewRand(1))
}
