package pool

import (
	"fmt"
	"testing"

	"pond/internal/emc"
	"pond/internal/stats"
)

// Property-based invariant check for the Pool Manager: under random
// interleavings of AddCapacity, ReleaseCapacity, EMC failures, and
// elastic grow/shrink resizes, slice accounting must balance at every
// step —
//
//  1. conservation: on every healthy device, free + owned + retired ==
//     physical slices across resizes, and the owned set is exactly the
//     slices the test still holds plus the ones draining through pending
//     release;
//  2. a failed EMC never reports free slices, never contributes to
//     FreeGB/FreeGBFor, and AddCapacity never hands out slices on it
//     (the PR 2 regression fixes);
//  3. a slice is never double-assigned: every AddCapacity result is
//     disjoint from everything currently held or draining;
//  4. a shrink never revokes an assigned slice: everything held before a
//     Shrink/ShrinkEMC is still owned by the same host afterwards, and
//     the manager's active capacity moves by exactly the grown/retired
//     amount.
//
// Each seed drives one random schedule; failures print the seed and the
// op index so a shrunk reproduction is one -run flag away.
func TestManagerInvariantsUnderRandomInterleavings(t *testing.T) {
	const (
		devices = 3
		perDev  = 16
		hosts   = 4
		ops     = 400
	)
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := stats.NewRand(seed)
			emcs := make([]*emc.Device, devices)
			for i := range emcs {
				emcs[i] = emc.NewDevice(fmt.Sprintf("emc%d", i), perDev, hosts)
			}
			m := NewManager(emcs, stats.NewRand(seed+1000))

			// held[host] is every slice the test owns, from AddCapacity
			// results not yet released.
			held := make(map[emc.HostID][]SliceRef)
			failed := make(map[int]bool)
			now := 0.0
			totalHeld := func() map[SliceRef]bool {
				set := make(map[SliceRef]bool)
				for _, refs := range held {
					for _, ref := range refs {
						if set[ref] {
							t.Fatalf("slice %v held twice", ref)
						}
						set[ref] = true
					}
				}
				return set
			}

			check := func(op int) {
				// FreeGB first: it drains completed offlines, so the
				// per-device counts below see the settled state.
				gotFree := m.FreeGB(now)
				heldSet := totalHeld()
				for di, d := range emcs {
					if failed[di] {
						if d.FreeSlices() != 0 {
							t.Fatalf("op %d: failed EMC %d reports %d free slices", op, di, d.FreeSlices())
						}
						continue
					}
					owned := 0
					for h := 0; h < hosts; h++ {
						for _, s := range d.OwnedBy(emc.HostID(h)) {
							owned++
							ref := SliceRef{EMC: di, Slice: s}
							// Every owned slice is either held by the test
							// or draining through a pending release.
							if !heldSet[ref] && !pendingHas(m, ref) {
								t.Fatalf("op %d: device %d slice %d owned by host %d but neither held nor pending",
									op, di, s, h)
							}
						}
					}
					// Conservation across resizes: every physical slice is
					// free, owned, or retired — grow/shrink never leak.
					if free, retired := d.FreeSlices(), d.RetiredSlices(); free+owned+retired != d.Slices() {
						t.Fatalf("op %d: device %d leaks slices: %d free + %d owned + %d retired != %d physical",
							op, di, free, owned, retired, d.Slices())
					}
					if got := d.CapacityGB(); got != (d.Slices()-d.RetiredSlices())*emc.SliceGB {
						t.Fatalf("op %d: device %d capacity %d GB does not match physical minus retired", op, di, got)
					}
				}
				// FreeGB must count only healthy devices.
				sum := 0
				for di, d := range emcs {
					if !failed[di] {
						sum += d.FreeSlices() * emc.SliceGB
					}
				}
				if gotFree != sum {
					t.Fatalf("op %d: FreeGB = %d, healthy free slices say %d", op, gotFree, sum)
				}
				// The manager's retirement view must agree with the devices.
				retiredSum := 0
				for _, d := range emcs {
					retiredSum += d.RetiredSlices() * emc.SliceGB
				}
				if got := m.RetiredGB(); got != retiredSum {
					t.Fatalf("op %d: RetiredGB = %d, devices say %d", op, got, retiredSum)
				}
			}

			activeGB := func() int {
				total := 0
				for _, d := range emcs {
					total += d.CapacityGB()
				}
				return total
			}
			// verifyHeldIntact asserts no held slice changed owner — the
			// shrink-safety property: resizes never revoke assigned slices.
			verifyHeldIntact := func(op int, what string) {
				for hh, refs := range held {
					for _, ref := range refs {
						if got := emcs[ref.EMC].Owner(ref.Slice); got != hh {
							t.Fatalf("op %d: %s revoked held slice %v (owner now %d, want %d)",
								op, what, ref, got, hh)
						}
					}
				}
			}

			for op := 0; op < ops; op++ {
				now += r.Bounded(0, 0.5)
				h := emc.HostID(r.Intn(hosts))
				switch draw := r.Float64(); {
				case draw < 0.35: // add
					gb := 1 + r.Intn(6)
					res, err := m.AddCapacity(h, gb, now)
					if err != nil {
						break // exhaustion is a legal outcome, not a bug
					}
					heldSet := totalHeld()
					for _, ref := range res.Slices {
						if failed[ref.EMC] {
							t.Fatalf("op %d: AddCapacity handed out slice %v on failed EMC", op, ref)
						}
						if heldSet[ref] || pendingHas(m, ref) {
							t.Fatalf("op %d: AddCapacity double-assigned slice %v", op, ref)
						}
					}
					held[h] = append(held[h], res.Slices...)
				case draw < 0.60: // release some of what this host holds
					refs := held[h]
					if len(refs) == 0 {
						break
					}
					n := 1 + r.Intn(len(refs))
					m.ReleaseCapacity(h, refs[:n], now)
					held[h] = append([]SliceRef(nil), refs[n:]...)
				case draw < 0.70: // grow (spread or targeted)
					gb := 1 + r.Intn(8)
					before := activeGB()
					var added int
					if r.Bernoulli(0.5) {
						added = m.Grow(gb)
					} else {
						di := r.Intn(devices)
						if err := m.GrowEMC(di, gb); err == nil {
							added = gb
						} else if !failed[di] {
							t.Fatalf("op %d: GrowEMC(%d, %d) failed on healthy device: %v", op, di, gb, err)
						}
					}
					if got := activeGB(); got != before+added {
						t.Fatalf("op %d: grow of %d moved active capacity %d -> %d", op, added, before, got)
					}
				case draw < 0.85: // shrink (spread or targeted)
					gb := 1 + r.Intn(8)
					before := activeGB()
					var retired int
					if r.Bernoulli(0.5) {
						retired = m.Shrink(gb, now)
					} else {
						di := r.Intn(devices)
						var err error
						retired, err = m.ShrinkEMC(di, gb, now)
						if err != nil {
							t.Fatalf("op %d: ShrinkEMC(%d, %d): %v", op, di, gb, err)
						}
					}
					if retired > gb {
						t.Fatalf("op %d: shrink of %d retired %d", op, gb, retired)
					}
					if got := activeGB(); got != before-retired {
						t.Fatalf("op %d: shrink of %d moved active capacity %d -> %d", op, retired, before, got)
					}
					verifyHeldIntact(op, "shrink")
				case draw < 0.92 && len(failed) < devices-1: // fail an EMC
					di := r.Intn(devices)
					if failed[di] {
						break
					}
					emcs[di].Fail()
					failed[di] = true
					// Slices on the dead device are gone with it.
					for hh, refs := range held {
						var keep []SliceRef
						for _, ref := range refs {
							if ref.EMC != di {
								keep = append(keep, ref)
							}
						}
						held[hh] = keep
					}
				default: // let pending offlines drain
					now += 2
				}
				check(op)
			}
			// Drain everything: after all holds are released and offline
			// completes, every healthy device must be fully free again —
			// up to the slices the elastic shrinks retired.
			for hh, refs := range held {
				if len(refs) > 0 {
					m.ReleaseCapacity(hh, refs, now)
				}
				held[hh] = nil
			}
			now += 1000
			for di, d := range emcs {
				if failed[di] {
					continue
				}
				free := m.FreeGB(now) // forces a drain
				_ = free
				if d.FreeSlices()+d.RetiredSlices() != d.Slices() {
					t.Fatalf("after full release: device %d has %d free + %d retired of %d slices",
						di, d.FreeSlices(), d.RetiredSlices(), d.Slices())
				}
			}
		})
	}
}

// pendingHas reports whether a slice is draining through the manager's
// pending-release queue.
func pendingHas(m *Manager, ref SliceRef) bool {
	for _, p := range m.pending {
		if p.ref == ref {
			return true
		}
	}
	return false
}
