// Failure-handling walkthrough (paper §4.2 "Failure management"): an EMC
// failure only affects the VMs with memory on that EMC, while a host
// failure loses its VMs but returns its pool slices to the surviving
// hosts immediately.
package main

import (
	"fmt"
	"log"

	"pond"
)

func main() {
	cfg := pond.DefaultConfig()
	cfg.Seed = 9
	sys, err := pond.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Build up a small population with pool-backed VMs (history first).
	for c := int32(1); c <= 3; c++ {
		for i := 0; i < 3; i++ {
			vm, err := sys.StartVM(pond.VMSpec{
				Cores: 2, MemoryGB: 16, Workload: "P2-database",
				Customer: c, UntouchedFrac: 0.6,
			})
			if err != nil {
				log.Fatal(err)
			}
			sys.AdvanceSeconds(600)
			if err := sys.StopVM(vm.ID); err != nil {
				log.Fatal(err)
			}
		}
	}
	var running []int64
	for c := int32(1); c <= 3; c++ {
		for i := 0; i < 10; i++ {
			vm, err := sys.StartVM(pond.VMSpec{
				Cores: 2, MemoryGB: 16, Workload: "P2-database",
				Customer: c, UntouchedFrac: 0.6,
			})
			if err != nil {
				log.Fatal(err)
			}
			running = append(running, vm.ID)
		}
	}
	st := sys.Stats()
	fmt.Printf("steady state: %d VMs, pool used %.0f GB, pool free %d GB\n\n",
		st.RunningVMs, st.PoolUsedGB, st.PoolFreeGB)

	// EMC failure: blast radius is exactly the VMs with slices there.
	affected, err := sys.InjectEMCFailure(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EMC 0 failed: %d of %d VMs affected (blast radius), %d keep running\n",
		len(affected), len(running), sys.Stats().RunningVMs)

	// Host failure: its VMs are lost; its pool memory is reclaimed.
	before := sys.Stats().PoolFreeGB
	lost, err := sys.InjectHostFailure(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host 0 failed: %d VMs lost, pool free %d -> %d GB (slices reclaimed)\n",
		len(lost), before, sys.Stats().PoolFreeGB)
	fmt.Printf("surviving VMs: %d\n", sys.Stats().RunningVMs)
}
