// Quickstart: boot a 16-socket Pond deployment, start a few VMs, and
// inspect where their memory landed.
package main

import (
	"fmt"
	"log"

	"pond"
)

func main() {
	sys, err := pond.NewSystem(pond.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Pond quickstart: 8 dual-socket hosts sharing a 1 TB CXL pool")
	fmt.Println()

	specs := []pond.VMSpec{
		{Cores: 8, MemoryGB: 32, Workload: "redis-ycsb-a", Customer: 1},
		{Cores: 4, MemoryGB: 16, Workload: "spark-kmeans", Customer: 2},
		{Cores: 16, MemoryGB: 64, Workload: "tpch-q09", Customer: 3},
	}
	var ids []int64
	for _, spec := range specs {
		vm, err := sys.StartVM(spec)
		if err != nil {
			log.Fatalf("start %s: %v", spec.Workload, err)
		}
		ids = append(ids, vm.ID)
		fmt.Printf("VM %d (%s) on host %d: %s, %g GB local + %g GB pool\n",
			vm.ID, spec.Workload, vm.Host, vm.Decision, vm.LocalGB, vm.PoolGB)
	}

	st := sys.Stats()
	fmt.Println()
	fmt.Printf("running VMs:   %d\n", st.RunningVMs)
	fmt.Printf("pool free:     %d GB\n", st.PoolFreeGB)
	fmt.Printf("local free:    %.0f GB\n", st.LocalFreeGB)
	fmt.Printf("stranded:      %.0f GB\n", st.StrandedGB)
	fmt.Printf("pool latency:  %s\n", st.PoolLatency)

	for _, id := range ids {
		if err := sys.StopVM(id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Printf("after stop: %d running, %d GB pool free (slices drain asynchronously)\n",
		sys.Stats().RunningVMs, sys.Stats().PoolFreeGB)
	sys.AdvanceSeconds(2)
	fmt.Printf("2s later:   %d GB pool free\n", sys.Stats().PoolFreeGB)
}
