// QoS monitoring walkthrough: place a latency-sensitive workload on pool
// memory with an overpredicted untouched-memory estimate, watch the
// monitor flag it, and verify the one-time reconfiguration brings it back
// to all-local memory (paper Figure 11, path B).
package main

import (
	"fmt"
	"log"

	"pond"
)

func main() {
	cfg := pond.DefaultConfig()
	cfg.Seed = 5
	sys, err := pond.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Build history for a customer running mcf (heavily DRAM-bound):
	// the untouched-memory model will size a zNUMA node from past VMs.
	const customer = 11
	for i := 0; i < 4; i++ {
		vm, err := sys.StartVM(pond.VMSpec{
			Cores: 4, MemoryGB: 32, Workload: "605.mcf_s",
			Customer: customer, UntouchedFrac: 0.4,
		})
		if err != nil {
			log.Fatal(err)
		}
		sys.AdvanceSeconds(1800)
		if err := sys.StopVM(vm.ID); err != nil {
			log.Fatal(err)
		}
	}

	// This VM touches far more memory than its history suggests: the
	// prediction overestimates untouched memory and the workload spills.
	vm, err := sys.StartVM(pond.VMSpec{
		Cores: 4, MemoryGB: 32, Workload: "605.mcf_s",
		Customer: customer, UntouchedFrac: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed: %s with %g GB local + %g GB pool\n", vm.Decision, vm.LocalGB, vm.PoolGB)
	fmt.Printf("realized slowdown: %.1f%% (PDM is %.0f%%)\n\n", 100*vm.SlowdownFrac, 100*cfg.PDM)
	if vm.PoolGB == 0 {
		fmt.Println("scheduler kept the VM local; no mitigation needed")
		return
	}

	fmt.Println("QoS sweep (hypervisor counters + PMU telemetry):")
	for _, rep := range sys.RunQoSSweep() {
		fmt.Printf("  VM %d: overpredicted=%v sensitive=%v reconfigured=%v",
			rep.VM, rep.Overpredicted, rep.Sensitive, rep.Reconfigured)
		if rep.Reconfigured {
			fmt.Printf(" (copied pool memory to local in %.0f ms)", rep.CopySeconds*1000)
		}
		fmt.Println()
	}

	after, _ := sys.VMInfo(vm.ID)
	fmt.Printf("\nafter mitigation: %g GB local + %g GB pool\n", after.LocalGB, after.PoolGB)
	fmt.Printf("total mitigations: %d\n", sys.Stats().Mitigations)
}
