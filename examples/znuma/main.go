// zNUMA walkthrough: start a VM with a pool-backed zero-core NUMA node,
// print the guest-visible topology (paper Figure 10), and show that a
// correctly sized local node confines nearly all traffic locally (paper
// Figure 15) while an undersized one spills.
package main

import (
	"fmt"
	"log"

	"pond"
)

func main() {
	cfg := pond.DefaultConfig()
	sys, err := pond.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Build history so the scheduler sizes a zNUMA node from the
	// customer's past untouched memory.
	for i := 0; i < 4; i++ {
		vm, err := sys.StartVM(pond.VMSpec{
			Cores: 8, MemoryGB: 64, Workload: "P2-database",
			Customer: 42, UntouchedFrac: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		sys.AdvanceSeconds(3600)
		if err := sys.StopVM(vm.ID); err != nil {
			log.Fatal(err)
		}
	}

	vm, err := sys.StartVM(pond.VMSpec{
		Cores: 8, MemoryGB: 64, Workload: "P2-database",
		Customer: 42, UntouchedFrac: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decision: %s (%g GB local + %g GB zNUMA)\n\n", vm.Decision, vm.LocalGB, vm.PoolGB)
	fmt.Println("guest view (numactl --hardware):")
	fmt.Println(vm.Topology)
	fmt.Printf("traffic to zNUMA node: %.3f%% of accesses (correct prediction => metadata only)\n",
		100*vm.ZNUMATrafficFrac)
	fmt.Printf("slowdown vs all-local: %.2f%%\n\n", 100*vm.SlowdownFrac)

	// Contrast: a VM that touches almost everything spills into its
	// zNUMA node and slows down.
	spiller, err := sys.StartVM(pond.VMSpec{
		Cores: 8, MemoryGB: 64, Workload: "P2-database",
		Customer: 42, UntouchedFrac: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overpredicted VM: %.2f%% of accesses hit zNUMA, slowdown %.2f%%\n",
		100*spiller.ZNUMATrafficFrac, 100*spiller.SlowdownFrac)
	fmt.Println("(the QoS monitor exists for exactly this case — see examples/qosmonitor)")
}
