// Scheduler walkthrough: run Pond's full prediction-driven control plane
// over a synthetic cluster trace and report how memory was split between
// local and pool DRAM, and what the resulting DRAM requirement is for a
// 16-socket pool (a single-cluster slice of paper Figure 21).
package main

import (
	"fmt"
	"log"

	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/predict"
	"pond/internal/sim"
	"pond/internal/stats"
	"pond/internal/workload"
)

func main() {
	// A small synthetic cluster: 12 dual-socket servers over 30 days.
	cfg := cluster.DefaultGenConfig()
	cfg.Clusters = 1
	cfg.Days = 30
	cfg.ServersPerCluster = 12
	trace := cluster.Generate(cfg)[0]
	fmt.Printf("trace: %d VMs on %d servers over %d days\n",
		len(trace.VMs), trace.Servers, trace.Days)

	// Train the untouched-memory model on an independent fleet.
	trainCfg := cfg
	trainCfg.Seed = 77
	trainCfg.Clusters = 4
	ds := predict.BuildUMDataset(cluster.Generate(trainCfg))
	um := predict.TrainGBMUntouched(ds.X, ds.TrueUntouched, 0.05, 1)

	// Train the latency-insensitivity forest on offline runs.
	sens := predict.BuildSensitivityDataset(workload.Ratio182, 0.05, 3, 1)
	rf := predict.TrainForest(sens.X, sens.Insensitive, 1)

	pcfg := core.DefaultConfig()
	pcfg.InsensScoreThreshold = predict.ThresholdForLabelRate(
		predict.DatasetScores(rf, sens), 0.30)
	pipeline := core.NewPipeline(pcfg, rf, um, nil)

	plan, st := pipeline.PlanTrace(&trace, stats.NewRand(9))
	fmt.Printf("decisions: %s\n", st)

	sched := sim.BuildSchedule(&trace)
	for _, k := range []int{8, 16, 32} {
		req := sim.RequiredDRAM(sched, k, plan)
		fmt.Printf("%2d-socket pool: required DRAM %.1f%% (%.1f%% saved)\n",
			k, req.RequiredPct(), req.SavingsPct())
	}

	baseline := sim.RequiredDRAM(sched, 16, sim.UniformPlan(len(trace.VMs), 0.15))
	fmt.Printf("static-15%% strawman at 16 sockets: %.1f%% required\n", baseline.RequiredPct())
	if st.MispredictFrac() > 1-pcfg.TP+0.01 {
		log.Printf("warning: misprediction rate %.2f%% above budget", 100*st.MispredictFrac())
	}
}
