package pond

import (
	"strings"
	"testing"

	"pond/internal/cluster"
)

// Helpers keeping the cluster dependency localized to the replay test.
func clusterGenConfigForReplay() cluster.GenConfig {
	cfg := cluster.DefaultGenConfig()
	cfg.Clusters = 1
	cfg.Days = 4
	cfg.ServersPerCluster = 6
	cfg.Seed = 77
	return cfg
}

func clusterGenerate(cfg cluster.GenConfig) []cluster.Trace { return cluster.Generate(cfg) }

func newTestSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.UsePredictions = false // fast default for plumbing tests
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := DefaultConfig()
	cfg.PoolGB = 1
	cfg.EMCs = 4
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("pool smaller than EMC count accepted")
	}
}

func TestStartVMAllLocalWithoutPredictions(t *testing.T) {
	sys := newTestSystem(t)
	vm, err := sys.StartVM(VMSpec{Cores: 4, MemoryGB: 16, Workload: "redis-ycsb-a"})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Decision != "all-local" || vm.PoolGB != 0 {
		t.Fatalf("no-prediction VM = %+v, want all-local", vm)
	}
	if vm.SlowdownFrac != 0 {
		t.Fatalf("all-local slowdown = %v", vm.SlowdownFrac)
	}
	st := sys.Stats()
	if st.RunningVMs != 1 {
		t.Fatalf("running = %d", st.RunningVMs)
	}
}

func TestStartVMUnknownWorkload(t *testing.T) {
	sys := newTestSystem(t)
	if _, err := sys.StartVM(VMSpec{Cores: 2, MemoryGB: 8, Workload: "not-a-workload"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestStartVMDefaultWorkload(t *testing.T) {
	sys := newTestSystem(t)
	vm, err := sys.StartVM(VMSpec{Cores: 2, MemoryGB: 8})
	if err != nil {
		t.Fatal(err)
	}
	if vm.ID == 0 {
		t.Fatal("no VM id assigned")
	}
}

func TestStopVMRestoresCapacity(t *testing.T) {
	sys := newTestSystem(t)
	before := sys.Stats()
	vm, err := sys.StartVM(VMSpec{Cores: 4, MemoryGB: 16, Workload: "redis-ycsb-a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StopVM(vm.ID); err != nil {
		t.Fatal(err)
	}
	after := sys.Stats()
	if after.RunningVMs != 0 || after.LocalFreeGB != before.LocalFreeGB {
		t.Fatalf("capacity not restored: %+v vs %+v", after, before)
	}
	if err := sys.StopVM(vm.ID); err == nil {
		t.Fatal("double stop accepted")
	}
}

func TestCapacityExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 1
	cfg.CoresPerSocket = 4
	cfg.UsePredictions = false
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StartVM(VMSpec{Cores: 4, MemoryGB: 16, Workload: "P5-web"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StartVM(VMSpec{Cores: 4, MemoryGB: 16, Workload: "P5-web"}); err != nil {
		t.Fatal(err) // second socket
	}
	if _, err := sys.StartVM(VMSpec{Cores: 4, MemoryGB: 16, Workload: "P5-web"}); err != ErrNoCapacity {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestPredictionsProduceZNUMA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Build customer history: several prior VMs with stable 50%
	// untouched memory, stopped to record outcomes.
	for i := 0; i < 4; i++ {
		vm, err := sys.StartVM(VMSpec{
			Cores: 4, MemoryGB: 16, Workload: "P2-database",
			Customer: 7, UntouchedFrac: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.AdvanceSeconds(3600)
		if err := sys.StopVM(vm.ID); err != nil {
			t.Fatal(err)
		}
	}
	// The next VM from customer 7 should get a zNUMA node sized from
	// history (P25 = 0.5 => ~45% pool) or go all-pool if the forest
	// finds the database workload insensitive.
	vm, err := sys.StartVM(VMSpec{
		Cores: 4, MemoryGB: 16, Workload: "P2-database",
		Customer: 7, UntouchedFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vm.PoolGB == 0 {
		t.Fatalf("history-rich VM got no pool memory: %+v", vm)
	}
	if !strings.Contains(vm.Topology, "node") {
		t.Fatal("missing topology rendering")
	}
	// zNUMA VMs with correct predictions see only metadata traffic.
	if vm.Decision == "zNUMA" && vm.ZNUMATrafficFrac > 0.01 {
		t.Fatalf("zNUMA traffic = %v, want metadata-level", vm.ZNUMATrafficFrac)
	}
}

func TestQoSSweepMitigatesSensitiveAllPool(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsePredictions = true
	cfg.Seed = 5
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force a bad placement by building history for a sensitive
	// workload customer, then relying on QoS to catch any all-pool or
	// spilling decision. Run several customers to get at least one
	// pool-using VM.
	var pooled int64
	for c := int32(1); c <= 6 && pooled == 0; c++ {
		for i := 0; i < 4; i++ {
			vm, err := sys.StartVM(VMSpec{
				Cores: 2, MemoryGB: 16, Workload: "505.mcf_r",
				Customer: c, UntouchedFrac: 0.1,
			})
			if err != nil {
				t.Fatal(err)
			}
			sys.AdvanceSeconds(600)
			if vm.PoolGB > 0 {
				pooled = vm.ID
				break
			}
			sys.StopVM(vm.ID)
		}
	}
	if pooled == 0 {
		t.Skip("no pool-backed placement materialized; nothing to mitigate")
	}
	reports := sys.RunQoSSweep()
	if len(reports) == 0 {
		t.Fatal("no reports for pool-using VMs")
	}
	// mcf with 10% untouched memory spills badly; the monitor should
	// flag and reconfigure it.
	found := false
	for _, rep := range reports {
		if rep.VM == pooled && rep.Reconfigured {
			found = true
			if rep.CopySeconds <= 0 {
				t.Fatal("reconfiguration without copy cost")
			}
		}
	}
	if !found {
		t.Fatalf("mcf VM not mitigated: %+v", reports)
	}
	vm, ok := sys.VMInfo(pooled)
	if !ok || vm.PoolGB != 0 {
		t.Fatalf("post-mitigation VM = %+v", vm)
	}
	if sys.Stats().Mitigations == 0 {
		t.Fatal("mitigation counter not updated")
	}
}

func TestInjectEMCFailureBlastRadius(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsePredictions = true
	cfg.Seed = 9
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Start history-rich VMs so some use the pool.
	var ids []int64
	for c := int32(1); c <= 4; c++ {
		for i := 0; i < 5; i++ {
			vm, err := sys.StartVM(VMSpec{
				Cores: 2, MemoryGB: 16, Workload: "P2-database",
				Customer: c, UntouchedFrac: 0.6,
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, vm.ID)
			sys.AdvanceSeconds(600)
			if i < 3 {
				sys.StopVM(vm.ID)
				ids = ids[:len(ids)-1]
			}
		}
	}
	running := sys.Stats().RunningVMs
	affected, err := sys.InjectEMCFailure(0)
	if err != nil {
		t.Fatal(err)
	}
	after := sys.Stats().RunningVMs
	if after != running-len(affected) {
		t.Fatalf("blast radius accounting: %d -> %d with %d affected", running, after, len(affected))
	}
	// VMs on the surviving EMC (or all-local) keep running.
	if after == 0 && running > len(affected) {
		t.Fatal("failure took down unaffected VMs")
	}
	if _, err := sys.InjectEMCFailure(99); err == nil {
		t.Fatal("bad EMC index accepted")
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 158 {
		t.Fatalf("workloads = %d", len(ws))
	}
}

func TestAdvanceAndNow(t *testing.T) {
	sys := newTestSystem(t)
	sys.AdvanceSeconds(10)
	sys.AdvanceSeconds(-5) // ignored
	if sys.Now() != 10 {
		t.Fatalf("now = %v", sys.Now())
	}
}

func TestStatsLatencyReporting(t *testing.T) {
	sys := newTestSystem(t)
	st := sys.Stats()
	if st.AccessLatencyN != 180 { // 16-socket pool
		t.Fatalf("pool latency = %v ns, want 180", st.AccessLatencyN)
	}
	if !strings.Contains(st.PoolLatency, "16-socket") {
		t.Fatalf("latency string = %q", st.PoolLatency)
	}
}

func TestQoSSweepMigratesWhenNoLocalHeadroom(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 2
	cfg.CoresPerSocket = 8
	cfg.MemGBPerSocket = 32 // tiny sockets: reconfiguration headroom is scarce
	cfg.Seed = 13
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// History so the scheduler uses the pool for a sensitive workload.
	for i := 0; i < 4; i++ {
		vm, err := sys.StartVM(VMSpec{
			Cores: 2, MemoryGB: 24, Workload: "605.mcf_s",
			Customer: 3, UntouchedFrac: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.AdvanceSeconds(600)
		sys.StopVM(vm.ID)
	}
	victim, err := sys.StartVM(VMSpec{
		Cores: 2, MemoryGB: 24, Workload: "605.mcf_s",
		Customer: 3, UntouchedFrac: 0.02, // overpredicted: spills hard
	})
	if err != nil {
		t.Fatal(err)
	}
	if victim.PoolGB == 0 {
		t.Skip("scheduler kept the victim local")
	}
	// Exhaust the victim host's local memory so reconfiguration cannot
	// run there. Best-fit placement prefers the victim's host while it
	// fits; the first filler landing elsewhere means it is full, and
	// stopping that filler keeps the other host free as the migration
	// target.
	for {
		filler, err := sys.StartVM(VMSpec{Cores: 1, MemoryGB: 14, Workload: "541.leela_r", Customer: 99})
		if err != nil {
			break
		}
		if filler.Host != victim.Host {
			if err := sys.StopVM(filler.ID); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	reports := sys.RunQoSSweep()
	for _, rep := range reports {
		if rep.VM != victim.ID {
			continue
		}
		if !rep.Reconfigured && !rep.Migrated {
			t.Fatalf("victim neither reconfigured nor migrated: %+v", rep)
		}
		after, _ := sys.VMInfo(victim.ID)
		if after.PoolGB != 0 {
			t.Fatalf("victim still pool-backed after mitigation: %+v", after)
		}
		return
	}
	t.Fatal("victim missing from QoS reports")
}

func TestInjectHostFailure(t *testing.T) {
	sys := newTestSystem(t)
	a, err := sys.StartVM(VMSpec{Cores: 4, MemoryGB: 16, Workload: "P5-web"})
	if err != nil {
		t.Fatal(err)
	}
	// Force a second VM onto a different host by filling the first
	// host's cores... simpler: place enough VMs that both hosts are
	// used, then fail one.
	var other int64
	for i := 0; i < 20; i++ {
		vm, err := sys.StartVM(VMSpec{Cores: 4, MemoryGB: 16, Workload: "P5-web"})
		if err != nil {
			break
		}
		if vm.Host != a.Host {
			other = vm.ID
			break
		}
	}
	lost, err := sys.InjectHostFailure(a.Host)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range lost {
		if id == a.ID {
			found = true
		}
		if id == other && other != 0 {
			t.Fatal("failure took down a VM on another host")
		}
	}
	if !found {
		t.Fatal("resident VM not reported lost")
	}
	if _, ok := sys.VMInfo(a.ID); ok {
		t.Fatal("lost VM still tracked")
	}
	if other != 0 {
		if _, ok := sys.VMInfo(other); !ok {
			t.Fatal("surviving VM dropped")
		}
	}
	if _, err := sys.InjectHostFailure(99); err == nil {
		t.Fatal("bad host index accepted")
	}
}

func TestReplayTraceThroughSystem(t *testing.T) {
	gen := clusterGenConfigForReplay()
	tr := clusterGenerate(gen)[0]

	cfg := DefaultConfig()
	cfg.Hosts = gen.ServersPerCluster
	cfg.Seed = 21
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Replay(&tr, 3600)
	if res.Started == 0 {
		t.Fatal("nothing started")
	}
	if float64(res.Rejected)/float64(res.Started+res.Rejected) > 0.15 {
		t.Fatalf("rejection rate too high: %+v", res)
	}
	if res.PoolBacked == 0 {
		t.Error("no VM used the pool during replay")
	}
	if res.MeanSlowdown > 0.05 {
		t.Errorf("mean slowdown %.3f above the PDM", res.MeanSlowdown)
	}
	if res.PeakPoolGB <= 0 {
		t.Error("pool never used")
	}
	// The system must drain to empty after the full replay.
	if sys.Stats().RunningVMs != 0 {
		t.Errorf("%d VMs still running after replay", sys.Stats().RunningVMs)
	}
	if res.String() == "" {
		t.Error("empty summary")
	}
}

func TestDescribe(t *testing.T) {
	sys := newTestSystem(t)
	d := sys.Describe()
	for _, want := range []string{"8 hosts", "1024 GB", "PDM=5%", "TP=98%", "all-local"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}
