GO ?= go

.PHONY: all build vet test test-short test-race bench bench-gate bench-baseline fleet

all: build vet test-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite: paper-scale fidelity for every figure (slow; the experiment
# pipelines use every core through the parallel engine).
test: build vet
	$(GO) test ./...

# Fast tier: reduced trace scales, no race detector; the quickest CI
# signal (the race matrix tier covers the detector).
test-short:
	$(GO) test -short ./...

# Race tier: the full suite under the race detector (CI matrix tier).
test-race:
	$(GO) test -race ./...

# Benchmark smoke: every figure benchmark runs exactly once so a broken
# pipeline fails fast without paying full benchmarking time.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# CI benchmark-regression gate: time the deterministic fleet smoke, emit
# BENCH_fleet.json, and fail on >20% regression vs BENCH_baseline.json.
# The bench output is redirected (not piped through tee) so a failing
# benchmark fails the target.
bench-gate:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > bench.txt 2>&1 || (cat bench.txt; false)
	cat bench.txt
	$(GO) run ./cmd/benchgate -bench bench.txt -baseline BENCH_baseline.json -out BENCH_fleet.json

# Refresh the committed benchmark baseline after an intentional change.
bench-baseline:
	$(GO) run ./cmd/benchgate -update

# Online fleet simulation quick-look across all three topologies.
fleet:
	$(GO) run ./cmd/pondfleet -topology flat,sharded,sparse -inject emc-fail@t=500
