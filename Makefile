GO ?= go

.PHONY: all build vet test test-short test-race bench

all: build vet test-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite: paper-scale fidelity for every figure (slow; the experiment
# pipelines use every core through the parallel engine).
test: build vet
	$(GO) test ./...

# Fast tier: reduced trace scales under the race detector; finishes in
# well under a minute and is what CI gates on.
test-short: build vet
	$(GO) test -short -race ./...

# Benchmark smoke: every figure benchmark runs exactly once so a broken
# pipeline fails fast without paying full benchmarking time.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
