GO ?= go

.PHONY: all build vet test test-short test-race lint cover bench bench-gate bench-baseline fleet plan serve docker docker-smoke soak soak-fleet soak-elastic fuzz golden

all: build vet test-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite: paper-scale fidelity for every figure (slow; the experiment
# pipelines use every core through the parallel engine).
test: build vet
	$(GO) test ./...

# Fast tier: reduced trace scales, no race detector; the quickest CI
# signal (the race matrix tier covers the detector).
test-short:
	$(GO) test -short ./...

# Race tier: the full suite under the race detector (CI matrix tier).
test-race:
	$(GO) test -race ./...

# Static analysis, pinned to the CI versions (first run downloads them).
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2024.1.1 ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@v1.1.3 ./...

# Short-tier statement coverage, gated at the committed COVERAGE_MIN.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	min=$$(cat COVERAGE_MIN 2>/dev/null); \
	[ -n "$$total" ] || { echo "could not compute total coverage"; exit 1; }; \
	[ -n "$$min" ] || { echo "COVERAGE_MIN missing or empty; the gate has no floor"; exit 1; }; \
	echo "total coverage: $$total% (minimum $$min%)"; \
	awk -v t="$$total" -v m="$$min" 'BEGIN { exit (t+0 >= m+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below the committed minimum $$min%"; exit 1; }

# Benchmark smoke: every figure benchmark runs exactly once so a broken
# pipeline fails fast without paying full benchmarking time.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# CI benchmark-regression gate: time the deterministic fleet smoke, emit
# BENCH_fleet.json, and fail on >20% regression vs BENCH_baseline.json.
# The bench output is redirected (not piped through tee) so a failing
# benchmark fails the target.
bench-gate:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > bench.txt 2>&1 || (cat bench.txt; false)
	cat bench.txt
	$(GO) run ./cmd/benchgate -bench bench.txt -baseline BENCH_baseline.json -out BENCH_fleet.json

# Refresh the committed benchmark baseline after an intentional change.
bench-baseline:
	$(GO) run ./cmd/benchgate -update

# Online fleet simulation quick-look across all three topologies.
fleet:
	$(GO) run ./cmd/pondfleet -topology flat,sharded,sparse -inject emc-fail@t=500

# Offline capacity planner: the DRAM-savings waterfall per topology.
plan:
	$(GO) run ./cmd/pondplan -topology flat,sharded,sparse -target-qos 0.01

# Live control-plane daemon on :8080, checkpointing to ./checkpoint.json
# on SIGTERM (curl walkthrough in README).
serve:
	$(GO) run ./cmd/pondserve -addr :8080 -state checkpoint.json

# Build the pondserve container image.
docker:
	docker build -t pondserve .

# Build the image and run the end-to-end container smoke: /healthz, a
# tiny run, and the streamed-log-vs-CLI determinism check (CI job).
docker-smoke:
	./scripts/docker-smoke.sh

# Elastic-pool soak: the capacity controller resizing EMCs mid-run with
# a manual shrink and a drift landing on top (the nightly elastic leg).
soak-elastic:
	$(GO) run ./cmd/pondfleet -topology flat -duration 20000 -cells 4 \
		-arrival poisson:rate=0.1:life=600 -elastic -plan-every 2000 \
		-target-qos 0.01 -inject "resize@t=5000:emc=1:slices=-32,drift@t=8000:mag=0.6"

# Long-horizon soak with the retraining loop, as the nightly workflow
# drives it (one topology; the workflow fans out the full matrix).
soak:
	$(GO) run ./cmd/pondfleet -topology sharded -duration 20000 -cells 4 \
		-arrival poisson:rate=0.1:life=600 -retrain-every 1000 \
		-inject drift@t=8000:mag=0.6 -models models-soak.json

# Fleet-scoped soak: the §5 central pipeline with staged canary rollout
# under regional drift (the nightly sharded-fleet-regional-drift leg).
soak-fleet:
	$(GO) run ./cmd/pondfleet -topology sharded -duration 20000 -cells 4 \
		-arrival poisson:rate=0.1:life=600 -retrain-every 1000 \
		-model-scope fleet -canary 0.25 -bake 2000 \
		-inject drift@t=8000:cells=2-3:mag=0.8 -models models-soak-fleet.json

# Fuzz the user-facing spec parsers for a bounded time each (seeds run
# as plain tests on every `go test`; this explores further, as CI does).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseInjections$$' -fuzztime $(FUZZTIME) ./internal/fleet
	$(GO) test -run '^$$' -fuzz '^FuzzParseArrival$$'    -fuzztime $(FUZZTIME) ./internal/fleet
	$(GO) test -run '^$$' -fuzz '^FuzzParseTopologies$$' -fuzztime $(FUZZTIME) ./internal/fleet
	$(GO) test -run '^$$' -fuzz '^FuzzParseSweep$$'      -fuzztime $(FUZZTIME) ./internal/experiments

# Regenerate the committed golden event logs after an intentional
# behaviour or log-format change.
golden:
	$(GO) test ./internal/fleet -run Golden -update-golden
