package pond

import (
	"context"

	"pond/internal/fleet"
)

// FleetRun is the incremental form of RunFleet: the same simulation,
// advanced one bounded time slice at a time under caller control. Every
// return from Advance is a safe point — all cells sit at the same
// simulated time with no event mid-flight — where the caller may drain
// the event log, snapshot progress, or inject a scenario before
// resuming. pondserve drives every live run through a FleetRun.
//
// Determinism contract: a run advanced through any sequence of slices,
// with any injections added live along the way, produces an event log
// byte-identical to a one-shot RunFleet whose Injections list carries
// the live injections appended in the order they were added. Config
// returns exactly that batch configuration, which is what the SIGTERM
// checkpoint persists.
//
// A FleetRun is not safe for concurrent use; callers serialize access.
type FleetRun struct {
	r    *fleet.Runner
	opts FleetOpts
}

// StartFleet builds a paused fleet run at t=0. The options pass through
// the same shim resolution, normalization, and validation as RunFleet.
func StartFleet(ctx context.Context, opts FleetOpts) (*FleetRun, error) {
	resolved, err := opts.resolved()
	if err != nil {
		return nil, err
	}
	fo, err := resolved.fleetOptions()
	if err != nil {
		return nil, err
	}
	r, err := fleet.NewRunner(ctx, fo)
	if err != nil {
		return nil, err
	}
	return &FleetRun{r: r, opts: resolved}, nil
}

// Advance runs the simulation forward to simulated time t (clamped to
// the horizon), processing any retrain and planning barriers crossed on
// the way. Reaching the horizon marks the run done.
func (fr *FleetRun) Advance(ctx context.Context, t float64) error {
	return fr.r.Advance(ctx, t)
}

// Inject schedules a scenario into the paused run. It must fire at or
// after the current simulated time and passes the same validation as a
// batch-scheduled injection; a completed run refuses it.
func (fr *FleetRun) Inject(in Injection) error {
	if err := fr.r.AddInjection(in.in); err != nil {
		return err
	}
	n := len(fr.opts.Injections)
	fr.opts.Injections = append(fr.opts.Injections[:n:n], in)
	return nil
}

// Now returns the current simulated time — the safe point the run is
// paused at.
func (fr *FleetRun) Now() float64 { return fr.r.Now() }

// Done reports whether the run has reached its horizon.
func (fr *FleetRun) Done() bool { return fr.r.Done() }

// Config returns the resolved grouped configuration with every live
// injection appended — the batch FleetOpts that reproduces this run's
// event log from scratch. It is the checkpoint payload pondserve writes
// on SIGTERM.
func (fr *FleetRun) Config() FleetOpts { return fr.opts }

// Finish advances to the horizon if the run is not there yet and
// assembles the merged report. It is idempotent: later calls return the
// same report.
func (fr *FleetRun) Finish(ctx context.Context) (*FleetReport, error) {
	rep, err := fr.r.Finish(ctx)
	if err != nil {
		return nil, err
	}
	return newFleetReport(rep), nil
}

// FleetProgress is a point-in-time snapshot of a run's aggregate
// counters, taken at a safe point.
type FleetProgress struct {
	// NowSec is the simulated time the run is paused at; DurationSec the
	// horizon; Done whether the horizon was reached.
	NowSec      float64 `json:"now_sec"`
	DurationSec float64 `json:"duration_sec"`
	Done        bool    `json:"done"`

	// Arrivals, Placed, Rejected, and Departed count VM lifecycle events
	// aggregated across cells so far.
	Arrivals int `json:"arrivals"`
	Placed   int `json:"placed"`
	Rejected int `json:"rejected"`
	Departed int `json:"departed"`
	// Injections counts scheduled plus live-added injections.
	Injections int `json:"injections"`

	// LiveVMs counts placed, not-yet-departed VMs across cells; PoolGB is
	// the summed active pool capacity and PoolUsedGB the summed pool draw
	// at the last accounting point.
	LiveVMs    int     `json:"live_vms"`
	PoolGB     int     `json:"pool_gb"`
	PoolUsedGB float64 `json:"pool_used_gb"`
	// Fallbacks counts pool-exhaustion DRAM fallbacks; QoSViolations
	// counts latency-band violations observed so far.
	Fallbacks     int `json:"fallbacks"`
	QoSViolations int `json:"qos_violations"`
	// Retrains and Rollbacks count model-lifecycle actions (cell scope
	// sums cells; fleet scope reports the central pipeline's counters).
	Retrains  int `json:"retrains"`
	Rollbacks int `json:"rollbacks"`
}

// Progress snapshots the run's aggregate lifecycle counters.
func (fr *FleetRun) Progress() FleetProgress {
	p := fr.r.Progress()
	return FleetProgress{
		NowSec:      p.NowSec,
		DurationSec: p.DurationSec,
		Done:        p.Done,
		Arrivals:    p.Arrivals,
		Placed:      p.Placed,
		Rejected:    p.Rejected,
		Departed:    p.Departed,
		Injections:  p.Injections,

		LiveVMs:       p.LiveVMs,
		PoolGB:        p.PoolGB,
		PoolUsedGB:    p.PoolUsedGB,
		Fallbacks:     p.Fallbacks,
		QoSViolations: p.QoSViolations,
		Retrains:      p.Retrains,
		Rollbacks:     p.Rollbacks,
	}
}

// FleetLogEvent is one complete event-log line drained from a run's
// streams; Cell is -1 for the fleet pipeline's barrier log. The
// deterministic EventLog is the cell streams concatenated in cell order
// followed by the fleet stream, each line newline-terminated — clients
// regroup drained events by cell to reconstruct and hash it.
type FleetLogEvent struct {
	Cell int    `json:"cell"`
	Line string `json:"line"`
}

// DrainEvents returns the log lines appended since the previous drain:
// cells in cell order, the fleet log last. Only complete lines are
// returned, without their trailing newline.
func (fr *FleetRun) DrainEvents() []FleetLogEvent {
	evs := fr.r.DrainEvents()
	out := make([]FleetLogEvent, len(evs))
	for i, e := range evs {
		out[i] = FleetLogEvent{Cell: e.Cell, Line: e.Line}
	}
	return out
}

// MetricsRow is one sampled point of a cell's sim-time metrics series;
// see EngineOpts.MetricsEverySec. Rows are pure observations — draining
// or discarding them never changes the run's results.
type MetricsRow = fleet.MetricsRow

// DrainMetrics returns the sim-time metrics rows sampled since the
// previous drain: cells in cell order, each cell's rows in time order.
// Must be called at a safe point (between Advance calls). Returns nil
// when EngineOpts.MetricsEverySec is unset.
func (fr *FleetRun) DrainMetrics() []MetricsRow {
	return fr.r.DrainMetrics()
}

// SetPhaseHook installs fn to be called at the end of each engine phase
// — "advance" (one parallel epoch), "retrain" and "plan" (barrier
// work), "finish" (the serial close-out) — with the simulated time the
// phase completed at and its wall-clock duration in seconds. The hook
// runs on the driving goroutine at safe points and observes only
// wall-clock timing, never simulation state; nil uninstalls it.
func (fr *FleetRun) SetPhaseHook(fn func(phase string, atSec, seconds float64)) {
	fr.r.SetPhaseHook(fn)
}
