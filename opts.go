package pond

import (
	"fmt"

	"pond/internal/fleet"
)

// ClusterOpts sizes the simulated fleet: the per-cell topology and
// hardware, how many independent cells run, and for how long. The zero
// value of any field falls back to the Defaults value.
type ClusterOpts struct {
	// Topology is the host-to-EMC connectivity of every cell: "flat",
	// "sharded", or "sparse" (Octopus-style overlapping pods).
	Topology string `json:"topology,omitempty"`
	// PodDegree is the per-host EMC count under "sparse".
	PodDegree int `json:"pod_degree,omitempty"`
	// Hosts is the number of hypervisor hosts per cell.
	Hosts int `json:"hosts,omitempty"`
	// EMCs is the number of external memory controllers per cell.
	EMCs int `json:"emcs,omitempty"`
	// PoolGB is each cell's pool capacity in GB, split evenly across its
	// EMCs.
	PoolGB int `json:"pool_gb,omitempty"`
	// Cells is the number of independent pool groups (engine shards).
	Cells int `json:"cells,omitempty"`
	// DurationSec is the simulated horizon.
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// ArrivalOpts describes the VM arrival process — the declarative form
// of the "poisson:rate=0.05:life=600" spec strings the CLI takes.
type ArrivalOpts struct {
	// Process is "poisson" (memoryless arrivals, exponential lifetimes)
	// or "trace" (interarrivals derived from the cluster generator).
	Process string `json:"process,omitempty"`
	// RatePerSec is the Poisson arrival rate in VMs per second.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// MeanLifetimeSec is the mean exponential VM lifetime under poisson.
	MeanLifetimeSec float64 `json:"mean_lifetime_sec,omitempty"`
}

// ModelOpts configures the prediction pipeline and the online
// model-lifecycle loop (§5 of the paper).
type ModelOpts struct {
	// Disabled turns off the ML scheduling pipeline entirely — the
	// no-pooling baseline. The zero value keeps predictions on.
	Disabled bool `json:"disabled,omitempty"`
	// RetrainEverySec > 0 closes the model-lifecycle loop: models
	// retrain from live telemetry at this cadence, shadow-score against
	// the serving champions, and hot-swap on proven improvement.
	RetrainEverySec float64 `json:"retrain_every_sec,omitempty"`
	// Scope selects where retraining happens: "cell" (the default —
	// every cell runs its own champion/challenger lifecycle) or "fleet"
	// (one central pipeline with staged canary rollout across cells).
	Scope string `json:"scope,omitempty"`
	// CanaryFraction is the fraction of cells a fleet-scoped release
	// reaches first, rounded up to at least one cell (0 = 0.25).
	CanaryFraction float64 `json:"canary_fraction,omitempty"`
	// BakeWindowSec is how long a fleet-scoped canary bakes before its
	// promote-or-rollback verdict (0 = twice the retrain cadence).
	BakeWindowSec float64 `json:"bake_window_sec,omitempty"`
	// PromoteMargin is the fractional rolling-loss improvement a
	// challenger must show to be promoted (0 = the 5% default).
	PromoteMargin float64 `json:"promote_margin,omitempty"`
	// HoldoutWindow is the rolling comparison window in completed VMs
	// (0 = the mlops default).
	HoldoutWindow int `json:"holdout_window,omitempty"`
	// MinTrainRows is the minimum completed VMs before a challenger is
	// trained (0 = the mlops default).
	MinTrainRows int `json:"min_train_rows,omitempty"`
	// Capture includes each cell's versioned model snapshots in the
	// report (see FleetReport.ModelsJSON).
	Capture bool `json:"capture,omitempty"`
}

// CapacityOpts configures the online capacity-planning loop that closes
// the telemetry-to-DRAM-savings cycle.
type CapacityOpts struct {
	// Elastic turns on the controller: at every PlanEverySec barrier
	// each cell re-plans its pool size from observed demand and grows or
	// shrinks the EMCs through the Pool Manager's elastic APIs.
	Elastic bool `json:"elastic,omitempty"`
	// PlanEverySec is the planning-barrier cadence in simulated seconds
	// (0 = an eighth of the horizon). Elastic only.
	PlanEverySec float64 `json:"plan_every_sec,omitempty"`
	// TargetQoS is the tolerated fraction of time pool demand may exceed
	// capacity — the controller's sizing target (0 = 0.01). Elastic
	// only.
	TargetQoS float64 `json:"target_qos,omitempty"`
}

// EngineOpts controls execution, not behaviour: results are
// byte-identical for every Workers value.
type EngineOpts struct {
	// Workers bounds the engine worker pool; <= 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Seed roots every cell's RNG stream (0 means the default seed).
	Seed int64 `json:"seed,omitempty"`
	// MetricsEverySec > 0 samples each cell's sim-time metrics series
	// (live VMs, pool use, queue depth, prediction error) at this cadence
	// in simulated seconds, drained via FleetRun.DrainMetrics. Sampling
	// only reads simulation state: the event log and report are
	// byte-identical with it on or off. 0 disables sampling.
	MetricsEverySec float64 `json:"metrics_every_sec,omitempty"`
}

// FleetOpts configures RunFleet and StartFleet. Configuration lives in
// the grouped, JSON-tagged sub-configs — the same declarative types
// drive the Go API, the pondfleet flags, and pondserve request bodies,
// with one validation path underneath. The flat fields mirror the
// pre-grouping API and remain so existing callers compile unchanged;
// each maps onto its grouped counterpart, and setting both to
// disagreeing values is an error.
type FleetOpts struct {
	Cluster  ClusterOpts  `json:"cluster"`
	Arrivals ArrivalOpts  `json:"arrival"`
	Model    ModelOpts    `json:"model"`
	Capacity CapacityOpts `json:"capacity"`
	Engine   EngineOpts   `json:"engine"`

	// Injections are the scheduled scenario events. In JSON each is its
	// canonical spec string, e.g. "emc-fail@t=500:emc=1".
	Injections []Injection `json:"injections,omitempty"`

	// Deprecated: use Cluster.Topology.
	Topology string `json:"-"`
	// Deprecated: use Cluster.PodDegree.
	PodDegree int `json:"-"`
	// Deprecated: use Cluster.Hosts.
	Hosts int `json:"-"`
	// Deprecated: use Cluster.EMCs.
	EMCs int `json:"-"`
	// Deprecated: use Cluster.PoolGB.
	PoolGB int `json:"-"`
	// Deprecated: use Cluster.Cells.
	Cells int `json:"-"`
	// Deprecated: use Cluster.DurationSec.
	DurationSec float64 `json:"-"`
	// Deprecated: use Arrivals; this is its spec-string form, e.g.
	// "poisson:rate=0.05:life=600".
	Arrival string `json:"-"`
	// Deprecated: use Injections; this is the comma-separated spec list
	// the -inject flag takes.
	Inject string `json:"-"`
	// Deprecated: use Model.Disabled.
	DisablePredictions bool `json:"-"`
	// Deprecated: use Model.RetrainEverySec.
	RetrainEverySec float64 `json:"-"`
	// Deprecated: use Model.Scope.
	ModelScope string `json:"-"`
	// Deprecated: use Model.CanaryFraction.
	CanaryFraction float64 `json:"-"`
	// Deprecated: use Model.BakeWindowSec.
	BakeWindowSec float64 `json:"-"`
	// Deprecated: use Model.PromoteMargin.
	PromoteMargin float64 `json:"-"`
	// Deprecated: use Model.HoldoutWindow.
	HoldoutWindow int `json:"-"`
	// Deprecated: use Model.MinTrainRows.
	MinTrainRows int `json:"-"`
	// Deprecated: use Model.Capture.
	CaptureModels bool `json:"-"`
	// Deprecated: use Capacity.Elastic.
	ElasticPool bool `json:"-"`
	// Deprecated: use Capacity.PlanEverySec.
	PlanEverySec float64 `json:"-"`
	// Deprecated: use Capacity.TargetQoS.
	TargetQoS float64 `json:"-"`
	// Deprecated: use Engine.Workers.
	Workers int `json:"-"`
	// Deprecated: use Engine.Seed.
	Seed int64 `json:"-"`
}

// Defaults returns the fully-populated default configuration — four
// flat-topology cells of 8 hosts x 4 EMCs, Poisson arrivals, predictions
// on. It is the single source of truth the pondfleet usage text and
// docs/DEFAULTS.md are generated from; conditional defaults (values
// derived from other fields at run time) are listed in DefaultNotes.
func Defaults() FleetOpts {
	d := fleet.DefaultOptions()
	return FleetOpts{
		Cluster: ClusterOpts{
			Topology:    d.Topology,
			PodDegree:   d.PodDegree,
			Hosts:       d.Hosts,
			EMCs:        d.EMCs,
			PoolGB:      d.PoolGB,
			Cells:       d.Cells,
			DurationSec: d.DurationSec,
		},
		Arrivals: ArrivalOpts{
			Process:         d.Arrival.Kind,
			RatePerSec:      d.Arrival.RatePerSec,
			MeanLifetimeSec: d.Arrival.MeanLifetimeSec,
		},
		Model:  ModelOpts{Scope: d.ModelScope},
		Engine: EngineOpts{Seed: d.Seed},
	}
}

// DefaultNote documents one zero-value default that is derived from
// other fields at run time rather than being a fixed number.
type DefaultNote struct {
	Field string
	Note  string
}

// DefaultNotes lists the conditional defaults, one sentence each — the
// companion to Defaults for doc generation. Keeping the sentences here,
// next to the structs, is what stops the three doc sites (struct
// godoc, pondfleet usage, README) drifting apart again.
func DefaultNotes() []DefaultNote {
	return []DefaultNote{
		{"Model.CanaryFraction", "0 means 0.25 of the cells (rounded up to at least one); fleet scope only."},
		{"Model.BakeWindowSec", "0 means twice Model.RetrainEverySec; fleet scope only."},
		{"Model.PromoteMargin", "0 means the mlops default of 5%."},
		{"Model.HoldoutWindow", "0 means the mlops default window."},
		{"Model.MinTrainRows", "0 means the mlops default row floor."},
		{"Capacity.PlanEverySec", "0 means an eighth of Cluster.DurationSec; elastic pool only."},
		{"Capacity.TargetQoS", "0 means 0.01; elastic pool only."},
		{"Engine.Workers", "0 means GOMAXPROCS; never changes results."},
		{"Engine.MetricsEverySec", "0 disables sim-time metrics sampling; any value never changes results."},
	}
}

// resolved maps the deprecated flat fields onto the grouped structs,
// erroring when a flat field and its grouped counterpart are both set
// and disagree. The returned options carry all configuration in the
// grouped fields; the flat fields are cleared.
func (o FleetOpts) resolved() (FleetOpts, error) {
	var errs []error
	mergeStr := func(dst *string, flat, name string) {
		switch {
		case flat == "":
		case *dst == "":
			*dst = flat
		case *dst != flat:
			errs = append(errs, fmt.Errorf("pond: deprecated FleetOpts.%s %q disagrees with the grouped field %q", name, flat, *dst))
		}
	}
	mergeInt := func(dst *int, flat int, name string) {
		switch {
		case flat == 0:
		case *dst == 0:
			*dst = flat
		case *dst != flat:
			errs = append(errs, fmt.Errorf("pond: deprecated FleetOpts.%s %d disagrees with the grouped field %d", name, flat, *dst))
		}
	}
	mergeInt64 := func(dst *int64, flat int64, name string) {
		switch {
		case flat == 0:
		case *dst == 0:
			*dst = flat
		case *dst != flat:
			errs = append(errs, fmt.Errorf("pond: deprecated FleetOpts.%s %d disagrees with the grouped field %d", name, flat, *dst))
		}
	}
	mergeFloat := func(dst *float64, flat float64, name string) {
		switch {
		case flat == 0:
		case *dst == 0:
			*dst = flat
		case *dst != flat:
			errs = append(errs, fmt.Errorf("pond: deprecated FleetOpts.%s %g disagrees with the grouped field %g", name, flat, *dst))
		}
	}
	mergeBool := func(dst *bool, flat bool) {
		// A true on either side wins; two bools cannot disagree the way
		// two non-zero numbers can.
		*dst = *dst || flat
	}

	mergeStr(&o.Cluster.Topology, o.Topology, "Topology")
	mergeInt(&o.Cluster.PodDegree, o.PodDegree, "PodDegree")
	mergeInt(&o.Cluster.Hosts, o.Hosts, "Hosts")
	mergeInt(&o.Cluster.EMCs, o.EMCs, "EMCs")
	mergeInt(&o.Cluster.PoolGB, o.PoolGB, "PoolGB")
	mergeInt(&o.Cluster.Cells, o.Cells, "Cells")
	mergeFloat(&o.Cluster.DurationSec, o.DurationSec, "DurationSec")
	mergeBool(&o.Model.Disabled, o.DisablePredictions)
	mergeFloat(&o.Model.RetrainEverySec, o.RetrainEverySec, "RetrainEverySec")
	mergeStr(&o.Model.Scope, o.ModelScope, "ModelScope")
	mergeFloat(&o.Model.CanaryFraction, o.CanaryFraction, "CanaryFraction")
	mergeFloat(&o.Model.BakeWindowSec, o.BakeWindowSec, "BakeWindowSec")
	mergeFloat(&o.Model.PromoteMargin, o.PromoteMargin, "PromoteMargin")
	mergeInt(&o.Model.HoldoutWindow, o.HoldoutWindow, "HoldoutWindow")
	mergeInt(&o.Model.MinTrainRows, o.MinTrainRows, "MinTrainRows")
	mergeBool(&o.Model.Capture, o.CaptureModels)
	mergeBool(&o.Capacity.Elastic, o.ElasticPool)
	mergeFloat(&o.Capacity.PlanEverySec, o.PlanEverySec, "PlanEverySec")
	mergeFloat(&o.Capacity.TargetQoS, o.TargetQoS, "TargetQoS")
	mergeInt(&o.Engine.Workers, o.Workers, "Workers")
	mergeInt64(&o.Engine.Seed, o.Seed, "Seed")

	if o.Arrival != "" {
		fm, err := fleet.ParseArrival(o.Arrival)
		if err != nil {
			return o, err
		}
		g := o.Arrivals
		if g == (ArrivalOpts{}) {
			o.Arrivals = ArrivalOpts{Process: fm.Kind, RatePerSec: fm.RatePerSec, MeanLifetimeSec: fm.MeanLifetimeSec}
		} else if filled := fillArrival(g.model()); filled != fm {
			errs = append(errs, fmt.Errorf("pond: deprecated FleetOpts.Arrival %q disagrees with the grouped Arrivals (%s)", o.Arrival, filled))
		}
	}
	if o.Inject != "" {
		parsed, err := ParseInjections(o.Inject)
		if err != nil {
			return o, err
		}
		if len(o.Injections) == 0 {
			o.Injections = parsed
		} else if specsOf(parsed) != specsOf(o.Injections) {
			errs = append(errs, fmt.Errorf("pond: deprecated FleetOpts.Inject %q disagrees with the grouped Injections (%s)", o.Inject, specsOf(o.Injections)))
		}
	}
	if len(errs) > 0 {
		return o, errs[0]
	}
	o.Topology, o.PodDegree, o.Hosts, o.EMCs, o.PoolGB, o.Cells, o.DurationSec = "", 0, 0, 0, 0, 0, 0
	o.Arrival, o.Inject = "", ""
	o.DisablePredictions, o.CaptureModels, o.ElasticPool = false, false, false
	o.RetrainEverySec, o.CanaryFraction, o.BakeWindowSec, o.PromoteMargin = 0, 0, 0, 0
	o.ModelScope = ""
	o.HoldoutWindow, o.MinTrainRows, o.Workers = 0, 0, 0
	o.PlanEverySec, o.TargetQoS = 0, 0
	o.Seed = 0
	return o, nil
}

// model converts the grouped arrival options to the internal form,
// leaving zero fields zero for the shared normalization to fill.
func (a ArrivalOpts) model() fleet.ArrivalModel {
	return fleet.ArrivalModel{Kind: a.Process, RatePerSec: a.RatePerSec, MeanLifetimeSec: a.MeanLifetimeSec}
}

// Spec renders the canonical arrival spec string the -arrival flag
// takes, e.g. "poisson:rate=0.05:life=600", with zero fields filled
// from the defaults.
func (a ArrivalOpts) Spec() string {
	return fillArrival(a.model()).String()
}

// fillArrival applies the arrival defaults to zero fields so a
// partially-specified grouped model compares equal to the same spec
// parsed from a string (the parser fills defaults eagerly).
func fillArrival(m fleet.ArrivalModel) fleet.ArrivalModel {
	d := fleet.DefaultArrival()
	if m.Kind == "" {
		m.Kind = d.Kind
	}
	if m.RatePerSec <= 0 {
		m.RatePerSec = d.RatePerSec
	}
	if m.MeanLifetimeSec <= 0 {
		m.MeanLifetimeSec = d.MeanLifetimeSec
	}
	return m
}

// fleetOptions resolves the flat-field shim and converts to the
// internal options. Validation itself happens in the internal
// normalization — the single path shared by every entry point.
func (o FleetOpts) fleetOptions() (fleet.Options, error) {
	r, err := o.resolved()
	if err != nil {
		return fleet.Options{}, err
	}
	inj := make([]fleet.Injection, len(r.Injections))
	for i := range r.Injections {
		inj[i] = r.Injections[i].in
	}
	return fleet.Options{
		Topology:        r.Cluster.Topology,
		PodDegree:       r.Cluster.PodDegree,
		Hosts:           r.Cluster.Hosts,
		EMCs:            r.Cluster.EMCs,
		PoolGB:          r.Cluster.PoolGB,
		Cells:           r.Cluster.Cells,
		DurationSec:     r.Cluster.DurationSec,
		Arrival:         r.Arrivals.model(),
		Injections:      inj,
		Predictions:     !r.Model.Disabled,
		RetrainEverySec: r.Model.RetrainEverySec,
		ModelScope:      r.Model.Scope,
		CanaryFraction:  r.Model.CanaryFraction,
		BakeWindowSec:   r.Model.BakeWindowSec,
		PromoteMargin:   r.Model.PromoteMargin,
		HoldoutWindow:   r.Model.HoldoutWindow,
		MinTrainRows:    r.Model.MinTrainRows,
		CaptureModels:   r.Model.Capture,
		ElasticPool:     r.Capacity.Elastic,
		PlanEverySec:    r.Capacity.PlanEverySec,
		TargetQoS:       r.Capacity.TargetQoS,
		Workers:         r.Engine.Workers,
		Seed:            r.Engine.Seed,
		MetricsEverySec: r.Engine.MetricsEverySec,
	}, nil
}

// Validate resolves the deprecated-field shim and runs the full
// normalization — the same checks RunFleet and StartFleet apply —
// without running anything. CLI flag parsing and pondserve both
// validate through here, so an error reads identically no matter which
// entry point produced it.
func (o FleetOpts) Validate() error {
	fo, err := o.fleetOptions()
	if err != nil {
		return err
	}
	_, err = fleet.NormalizeOptions(fo)
	return err
}
