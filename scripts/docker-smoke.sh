#!/usr/bin/env bash
# Docker smoke test: build the pondserve image, boot it, poll /healthz,
# POST a tiny run, stream its event log, and assert the streamed log's
# SHA-256 matches both the daemon's served report hash and the same
# configuration executed through the pondfleet CLI — the determinism
# bridge, verified across the container boundary.
set -euo pipefail
cd "$(dirname "$0")/.."

IMAGE=pondserve-smoke
NAME=pondserve-smoke-$$
PORT="${SMOKE_PORT:-18080}"

cleanup() {
    docker rm -f "$NAME" >/dev/null 2>&1 || true
}
trap cleanup EXIT

echo "==> building image"
docker build -t "$IMAGE" .

echo "==> starting container"
docker run -d --name "$NAME" -p "127.0.0.1:${PORT}:8080" "$IMAGE" >/dev/null

echo "==> waiting for /healthz"
for i in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:${PORT}/healthz" >/dev/null 2>&1; then
        break
    fi
    [ "$i" = 50 ] && { echo "daemon never became healthy"; docker logs "$NAME"; exit 1; }
    sleep 0.2
done

echo "==> starting a tiny run"
BODY='{"opts": {
  "cluster": {"hosts": 4, "emcs": 4, "pool_gb": 64, "cells": 2, "duration_sec": 300},
  "arrival": {"process": "poisson", "rate_per_sec": 0.1, "mean_lifetime_sec": 150},
  "model": {"disabled": true},
  "injections": ["emc-fail@t=150:emc=1"]
}}'
RUN_ID=$(curl -fsS -X POST "http://127.0.0.1:${PORT}/runs" -d "$BODY" | jq -r .id)
[ -n "$RUN_ID" ] && [ "$RUN_ID" != null ] || { echo "no run id returned"; exit 1; }

echo "==> waiting for run $RUN_ID"
for i in $(seq 1 100); do
    STATE=$(curl -fsS "http://127.0.0.1:${PORT}/runs/${RUN_ID}" | jq -r .state)
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && { echo "run failed"; exit 1; }
    [ "$i" = 100 ] && { echo "run never completed (state=$STATE)"; exit 1; }
    sleep 0.2
done

SERVED_SHA=$(curl -fsS "http://127.0.0.1:${PORT}/runs/${RUN_ID}" | jq -r .report.log_sha256)

echo "==> reassembling the streamed event log"
# The deterministic EventLog is the cell streams concatenated in cell
# order with the fleet stream (cell -1) last; within a stream the lines
# keep their sequence order, which a stable sort preserves.
STREAM_SHA=$(curl -fsS "http://127.0.0.1:${PORT}/runs/${RUN_ID}/events" \
    | jq -rs 'map(.cell = (if .cell < 0 then 1e12 else .cell end)) | sort_by(.cell) | .[].line' \
    | sha256sum | cut -d' ' -f1)

echo "==> running the same configuration through pondfleet"
CLI_SHA=$(go run ./cmd/pondfleet -hosts 4 -emcs 4 -pool 64 -cells 2 -duration 300 \
    -arrival poisson:rate=0.1:life=150 -no-predictions -inject emc-fail@t=150:emc=1 \
    | grep -o 'sha256=[0-9a-f]*' | cut -d= -f2)

echo "    streamed: $STREAM_SHA"
echo "    served:   $SERVED_SHA"
echo "    cli:      $CLI_SHA"
[ "$STREAM_SHA" = "$SERVED_SHA" ] || { echo "streamed log does not match the served report hash"; exit 1; }
[ "$STREAM_SHA" = "$CLI_SHA" ] || { echo "served run does not match the pondfleet CLI run"; exit 1; }
echo "==> docker smoke passed"
