#!/usr/bin/env bash
# Docker smoke test: build the pondserve image, boot it, poll /healthz,
# POST a tiny run, stream its event log, and assert the streamed log's
# manifest SHA-256 matches both the daemon's served report hash and the
# same configuration executed through the pondfleet CLI — the
# determinism bridge, verified across the container boundary.
#
# A second leg exercises the v2 checkpoint: a run held mid-flight is
# SIGTERMed with the container, the container restarts, and the run must
# come back holding at the same simulated second (restored from its
# snapshot, not re-simulated), resume, and finish with the identical
# hash.
#
# The observability assertions ride the same runs: the served runs
# sample a sim-time series (engine.metrics_every_sec) while the CLI
# comparison run does not, so the hash equalities double as the
# metrics-on/off determinism proof across the container boundary.
# /metrics must serve live per-run gauges mid-run, the series must
# replay in full after the checkpoint restore, and the pprof surface
# must NOT exist on the API listener (it is opt-in via -admin-addr).
set -euo pipefail
cd "$(dirname "$0")/.."

IMAGE=pondserve-smoke
NAME=pondserve-smoke-$$
PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
CELLS=2

cleanup() {
    docker rm -f "$NAME" >/dev/null 2>&1 || true
}
trap cleanup EXIT

# stream_sha reassembles the report hash from drained NDJSON events the
# way pond.EventLogSHA256 does: partition lines into per-cell streams
# (cell -1 is the fleet pipeline), hash each stream, then hash the
# manifest of stream hashes. This is the scheme FleetReport.LogSHA256
# uses, so it can verify a log whose drained prefixes the daemon has
# already compacted away.
stream_sha() {
    local events=$1 manifest="" c h
    for c in $(seq 0 $((CELLS - 1))); do
        h=$(printf '%s' "$events" \
            | jq -rs --argjson c "$c" 'map(select(.cell == $c)) | .[].line' \
            | sha256sum | cut -d' ' -f1)
        manifest+="$h"$'\n'
    done
    h=$(printf '%s' "$events" \
        | jq -rs 'map(select(.cell < 0)) | .[].line' \
        | sha256sum | cut -d' ' -f1)
    manifest+="$h"$'\n'
    printf '%s' "$manifest" | sha256sum | cut -d' ' -f1
}

wait_healthy() {
    for i in $(seq 1 50); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
            return 0
        fi
        [ "$i" = 50 ] && { echo "daemon never became healthy"; docker logs "$NAME"; exit 1; }
        sleep 0.2
    done
}

wait_state() {
    local id=$1 want=$2 state
    for i in $(seq 1 100); do
        state=$(curl -fsS "$BASE/runs/$id" | jq -r .state)
        [ "$state" = "$want" ] && return 0
        [ "$state" = failed ] && { echo "run $id failed"; exit 1; }
        [ "$i" = 100 ] && { echo "run $id never reached $want (state=$state)"; exit 1; }
        sleep 0.2
    done
}

echo "==> building image"
docker build -t "$IMAGE" .

echo "==> starting container"
docker run -d --name "$NAME" -p "127.0.0.1:${PORT}:8080" "$IMAGE" >/dev/null
wait_healthy

echo "==> starting a tiny run"
OPTS='{
  "cluster": {"hosts": 4, "emcs": 4, "pool_gb": 64, "cells": 2, "duration_sec": 300},
  "arrival": {"process": "poisson", "rate_per_sec": 0.1, "mean_lifetime_sec": 150},
  "model": {"disabled": true},
  "engine": {"metrics_every_sec": 50},
  "injections": ["emc-fail@t=150:emc=1"]
}'
# 2 cells x 6 samples (50s cadence over 300s) = the full series size.
EXPECT_ROWS=12
RUN_ID=$(curl -fsS -X POST "$BASE/runs" -d "{\"opts\": $OPTS}" | jq -r .id)
[ -n "$RUN_ID" ] && [ "$RUN_ID" != null ] || { echo "no run id returned"; exit 1; }

echo "==> waiting for run $RUN_ID"
wait_state "$RUN_ID" done

SERVED_SHA=$(curl -fsS "$BASE/runs/${RUN_ID}" | jq -r .report.log_sha256)

echo "==> reassembling the streamed event log"
STREAM_SHA=$(stream_sha "$(curl -fsS "$BASE/runs/${RUN_ID}/events")")

echo "==> running the same configuration through pondfleet"
CLI_SHA=$(go run ./cmd/pondfleet -hosts 4 -emcs 4 -pool 64 -cells 2 -duration 300 \
    -arrival poisson:rate=0.1:life=150 -no-predictions -inject emc-fail@t=150:emc=1 \
    | grep -o 'sha256=[0-9a-f]*' | cut -d= -f2)

echo "    streamed: $STREAM_SHA"
echo "    served:   $SERVED_SHA"
echo "    cli:      $CLI_SHA"
[ "$STREAM_SHA" = "$SERVED_SHA" ] || { echo "streamed log does not match the served report hash"; exit 1; }
[ "$STREAM_SHA" = "$CLI_SHA" ] || { echo "served run does not match the pondfleet CLI run"; exit 1; }

echo "==> kill-restart leg: hold a run mid-flight, SIGTERM the container"
HOLD_ID=$(curl -fsS -X POST "$BASE/runs" -d "{\"opts\": $OPTS, \"hold_at_sec\": [100]}" | jq -r .id)
[ -n "$HOLD_ID" ] && [ "$HOLD_ID" != null ] || { echo "no run id returned"; exit 1; }
wait_state "$HOLD_ID" holding

echo "==> observability: /metrics serves live per-run gauges mid-run"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q "pond_run_sim_time_seconds{run=\"$HOLD_ID\"} 100" \
    || { echo "/metrics missing the held run's sim-time gauge at t=100"; echo "$METRICS" | grep pond_run_sim_time || true; exit 1; }
echo "$METRICS" | grep -q "pond_run_state{run=\"$HOLD_ID\",state=\"holding\"} 1" \
    || { echo "/metrics missing the held run's state gauge"; exit 1; }
echo "$METRICS" | grep -q "pond_runs_started_total 2" \
    || { echo "/metrics runs-started counter wrong"; exit 1; }
MID_ROWS=$(curl -fsS "$BASE/runs/${HOLD_ID}/metrics" | jq '.rows | length')
[ "$MID_ROWS" -gt 0 ] || { echo "no sim-time series rows mid-run"; exit 1; }

echo "==> observability: pprof must be absent without -admin-addr"
PPROF_CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/debug/pprof/")
[ "$PPROF_CODE" = 404 ] || { echo "pprof answered $PPROF_CODE on the API listener; it must be admin-only"; exit 1; }

docker stop -t 30 "$NAME" >/dev/null

echo "==> restarting container; run must restore from its snapshot"
RESTORE_START=$SECONDS
docker start "$NAME" >/dev/null
wait_healthy
wait_state "$HOLD_ID" holding
RESTORE_SECS=$((SECONDS - RESTORE_START))

NOW=$(curl -fsS "$BASE/runs/${HOLD_ID}" | jq -r .progress.now_sec)
[ "$NOW" = 100 ] || { echo "restored run is at t=${NOW}s, expected the 100s hold point"; exit 1; }
# The snapshot restore is O(state): a generous bound still catches a
# regression to re-running the elapsed horizon.
[ "$RESTORE_SECS" -le 20 ] || { echo "restore took ${RESTORE_SECS}s; snapshot restore should be near-instant"; exit 1; }

echo "==> resuming restored run"
curl -fsS -X POST "$BASE/runs/${HOLD_ID}/resume" >/dev/null
wait_state "$HOLD_ID" done

RESTORED_SHA=$(curl -fsS "$BASE/runs/${HOLD_ID}" | jq -r .report.log_sha256)
RESTORED_STREAM_SHA=$(stream_sha "$(curl -fsS "$BASE/runs/${HOLD_ID}/events")")
echo "    restored served:   $RESTORED_SHA (restore ${RESTORE_SECS}s)"
echo "    restored streamed: $RESTORED_STREAM_SHA"
[ "$RESTORED_SHA" = "$CLI_SHA" ] || { echo "restored run does not match the uninterrupted CLI run"; exit 1; }
[ "$RESTORED_STREAM_SHA" = "$CLI_SHA" ] || { echo "restored stream (across the restart) does not reassemble to the CLI hash"; exit 1; }

echo "==> observability: full series replays after the checkpoint restore"
FINAL_ROWS=$(curl -fsS "$BASE/runs/${HOLD_ID}/metrics" | jq '.rows | length')
[ "$FINAL_ROWS" = "$EXPECT_ROWS" ] || { echo "replayed series has $FINAL_ROWS rows, want $EXPECT_ROWS"; exit 1; }
echo "==> docker smoke passed"
