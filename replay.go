package pond

import (
	"fmt"
	"sort"

	"pond/internal/cluster"
)

// ReplayResult summarizes a trace replay through the live System: every
// arrival becomes a StartVM, every departure a StopVM, with periodic QoS
// sweeps in between. This is the integration path between the synthetic
// trace substrate and the full hardware/software stack (the cluster
// simulator in internal/sim covers the same ground at fleet scale with
// lightweight accounting; Replay exercises the real components).
type ReplayResult struct {
	Started      int
	Rejected     int
	PoolBacked   int
	Mitigations  int
	PeakPoolGB   float64
	PeakStranded float64
	// MeanSlowdown is the GB-weighted mean realized slowdown.
	MeanSlowdown float64
}

// String renders the replay summary.
func (r ReplayResult) String() string {
	return fmt.Sprintf("started=%d rejected=%d pool-backed=%d mitigations=%d peak-pool=%.0fGB peak-stranded=%.0fGB mean-slowdown=%.2f%%",
		r.Started, r.Rejected, r.PoolBacked, r.Mitigations, r.PeakPoolGB, r.PeakStranded, 100*r.MeanSlowdown)
}

// Replay runs a cluster trace through the system. qosEverySec sets the
// QoS sweep cadence (0 disables sweeps). The trace should be sized to the
// system: replaying a 16-server trace into an 8-host system rejects the
// overflow, which the result reports rather than failing.
func (s *System) Replay(tr *cluster.Trace, qosEverySec float64) ReplayResult {
	type event struct {
		at     float64
		arrive bool
		vmIdx  int
	}
	events := make([]event, 0, 2*len(tr.VMs))
	for i := range tr.VMs {
		events = append(events,
			event{at: tr.VMs[i].ArrivalSec, arrive: true, vmIdx: i},
			event{at: tr.VMs[i].DepartureSec(), arrive: false, vmIdx: i},
		)
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return !events[a].arrive && events[b].arrive
	})

	var res ReplayResult
	idMap := make(map[int]int64, len(tr.VMs))
	var slowSum, gbSum float64
	nextQoS := qosEverySec

	for _, ev := range events {
		if qosEverySec > 0 {
			for nextQoS <= ev.at {
				s.AdvanceSeconds(nextQoS - s.Now())
				for _, rep := range s.RunQoSSweep() {
					if rep.Reconfigured || rep.Migrated {
						res.Mitigations++
					}
				}
				nextQoS += qosEverySec
			}
		}
		if ev.at > s.Now() {
			s.AdvanceSeconds(ev.at - s.Now())
		}
		vm := &tr.VMs[ev.vmIdx]
		if ev.arrive {
			handle, err := s.StartVM(VMSpec{
				Cores:         vm.Type.Cores,
				MemoryGB:      vm.Type.MemoryGB,
				Workload:      vm.GroundTruth.Workload.Name,
				Customer:      int32(vm.Customer),
				UntouchedFrac: vm.GroundTruth.UntouchedFrac,
			})
			if err != nil {
				res.Rejected++
				continue
			}
			res.Started++
			if handle.PoolGB > 0 {
				res.PoolBacked++
			}
			slowSum += handle.SlowdownFrac * vm.Type.MemoryGB
			gbSum += vm.Type.MemoryGB
			idMap[ev.vmIdx] = handle.ID

			st := s.Stats()
			if st.PoolUsedGB > res.PeakPoolGB {
				res.PeakPoolGB = st.PoolUsedGB
			}
			if st.StrandedGB > res.PeakStranded {
				res.PeakStranded = st.StrandedGB
			}
			continue
		}
		if id, ok := idMap[ev.vmIdx]; ok {
			// The VM may already be gone (EMC/host failure injection
			// during replay); ignore unknown ids.
			_ = s.StopVM(id)
			delete(idMap, ev.vmIdx)
		}
	}
	if gbSum > 0 {
		res.MeanSlowdown = slowSum / gbSum
	}
	return res
}
