package pond

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestConcurrentSystemUse hammers one System from many goroutines mixing
// every control-plane entry point. Run with -race: the System's coarse
// lock must serialize VM admission, release, QoS sweeps, and stats reads
// without data races or lost capacity.
func TestConcurrentSystemUse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsePredictions = false // keep each op cheap; locking is what's under test
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				vm, err := sys.StartVM(VMSpec{
					Cores: 2, MemoryGB: 8,
					Workload: "redis-ycsb-a",
					Customer: int32(g + 1),
				})
				if err != nil {
					if errors.Is(err, ErrNoCapacity) {
						continue // another goroutine got there first; fine
					}
					t.Errorf("StartVM: %v", err)
					return
				}
				if _, ok := sys.VMInfo(vm.ID); !ok {
					t.Errorf("VMInfo lost VM %d", vm.ID)
					return
				}
				sys.AdvanceSeconds(1)
				_ = sys.Stats()
				_ = sys.Describe()
				if i%5 == 0 {
					_ = sys.RunQoSSweep()
				}
				if err := sys.StopVM(vm.ID); err != nil {
					t.Errorf("StopVM: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := sys.Stats()
	if st.RunningVMs != 0 {
		t.Fatalf("%d VMs leaked after concurrent start/stop", st.RunningVMs)
	}
	before, _ := NewSystem(cfg)
	if st.LocalFreeGB != before.Stats().LocalFreeGB {
		t.Fatalf("local capacity drifted: %.0f GB free, want %.0f", st.LocalFreeGB, before.Stats().LocalFreeGB)
	}
}

// TestConcurrentStartersAndStoppers splits producers and consumers across
// goroutines so starts and stops of the same VMs genuinely interleave.
func TestConcurrentStartersAndStoppers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsePredictions = false
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(chan int64, 128)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				vm, err := sys.StartVM(VMSpec{Cores: 1, MemoryGB: 4, Workload: "P5-web"})
				if err != nil {
					continue
				}
				ids <- vm.ID
			}
		}()
	}
	var stopped sync.WaitGroup
	for g := 0; g < 4; g++ {
		stopped.Add(1)
		go func() {
			defer stopped.Done()
			for id := range ids {
				if err := sys.StopVM(id); err != nil {
					t.Errorf("StopVM(%d): %v", id, err)
				}
				_ = sys.Stats()
			}
		}()
	}
	wg.Wait()
	close(ids)
	stopped.Wait()
	if n := sys.Stats().RunningVMs; n != 0 {
		t.Fatalf("%d VMs still running", n)
	}
}

// TestRunExperimentsUnderRace drives one small figure pipeline through
// the public API with a parallel worker pool; under -race this sweeps the
// engine's work-stealing deques and the fan-out/merge path.
func TestRunExperimentsUnderRace(t *testing.T) {
	res, err := RunExperiments(context.Background(), ExperimentOptions{
		Scale:   "quick",
		Figures: []string{"2a"},
		Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "2a" || res[0].Output == "" {
		t.Fatalf("unexpected results: %+v", res)
	}
}

// TestRunExperimentsValidation covers the public API's error paths and
// cancellation.
func TestRunExperimentsValidation(t *testing.T) {
	if _, err := RunExperiments(context.Background(), ExperimentOptions{Scale: "galactic"}); err == nil {
		t.Fatal("bad scale accepted")
	}
	if _, err := RunExperiments(context.Background(), ExperimentOptions{Figures: []string{"nope"}}); err == nil {
		t.Fatal("bad figure accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperiments(ctx, ExperimentOptions{Figures: []string{"2a"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunExperimentsDeterministic asserts the public API inherits the
// engine's worker-count independence.
func TestRunExperimentsDeterministic(t *testing.T) {
	opts := ExperimentOptions{Figures: []string{"2a", "3"}, Seed: 7}
	opts.Workers = 1
	a, err := RunExperiments(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	b, err := RunExperiments(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Output != b[i].Output {
			t.Fatalf("figure %s differs between workers=1 and workers=8", a[i].Name)
		}
	}
}
