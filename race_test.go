package pond

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSystemUse hammers one System from many goroutines mixing
// every control-plane entry point. Run with -race: the System's coarse
// lock must serialize VM admission, release, QoS sweeps, and stats reads
// without data races or lost capacity.
func TestConcurrentSystemUse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsePredictions = false // keep each op cheap; locking is what's under test
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				vm, err := sys.StartVM(VMSpec{
					Cores: 2, MemoryGB: 8,
					Workload: "redis-ycsb-a",
					Customer: int32(g + 1),
				})
				if err != nil {
					if errors.Is(err, ErrNoCapacity) {
						continue // another goroutine got there first; fine
					}
					t.Errorf("StartVM: %v", err)
					return
				}
				if _, ok := sys.VMInfo(vm.ID); !ok {
					t.Errorf("VMInfo lost VM %d", vm.ID)
					return
				}
				sys.AdvanceSeconds(1)
				_ = sys.Stats()
				_ = sys.Describe()
				if i%5 == 0 {
					_ = sys.RunQoSSweep()
				}
				if err := sys.StopVM(vm.ID); err != nil {
					t.Errorf("StopVM: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := sys.Stats()
	if st.RunningVMs != 0 {
		t.Fatalf("%d VMs leaked after concurrent start/stop", st.RunningVMs)
	}
	before, _ := NewSystem(cfg)
	if st.LocalFreeGB != before.Stats().LocalFreeGB {
		t.Fatalf("local capacity drifted: %.0f GB free, want %.0f", st.LocalFreeGB, before.Stats().LocalFreeGB)
	}
}

// TestConcurrentStartersAndStoppers splits producers and consumers across
// goroutines so starts and stops of the same VMs genuinely interleave.
func TestConcurrentStartersAndStoppers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsePredictions = false
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(chan int64, 128)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				vm, err := sys.StartVM(VMSpec{Cores: 1, MemoryGB: 4, Workload: "P5-web"})
				if err != nil {
					continue
				}
				ids <- vm.ID
			}
		}()
	}
	var stopped sync.WaitGroup
	for g := 0; g < 4; g++ {
		stopped.Add(1)
		go func() {
			defer stopped.Done()
			for id := range ids {
				if err := sys.StopVM(id); err != nil {
					t.Errorf("StopVM(%d): %v", id, err)
				}
				_ = sys.Stats()
			}
		}()
	}
	wg.Wait()
	close(ids)
	stopped.Wait()
	if n := sys.Stats().RunningVMs; n != 0 {
		t.Fatalf("%d VMs still running", n)
	}
}

// TestRunExperimentsUnderRace drives one small figure pipeline through
// the public API with a parallel worker pool; under -race this sweeps the
// engine's work-stealing deques and the fan-out/merge path.
func TestRunExperimentsUnderRace(t *testing.T) {
	res, err := RunExperiments(context.Background(), ExperimentOptions{
		Scale:   "quick",
		Figures: []string{"2a"},
		Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "2a" || res[0].Output == "" {
		t.Fatalf("unexpected results: %+v", res)
	}
}

// TestRunExperimentsValidation covers the public API's error paths and
// cancellation.
func TestRunExperimentsValidation(t *testing.T) {
	if _, err := RunExperiments(context.Background(), ExperimentOptions{Scale: "galactic"}); err == nil {
		t.Fatal("bad scale accepted")
	}
	if _, err := RunExperiments(context.Background(), ExperimentOptions{Figures: []string{"nope"}}); err == nil {
		t.Fatal("bad figure accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperiments(ctx, ExperimentOptions{Figures: []string{"2a"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunExperimentsDeterministic asserts the public API inherits the
// engine's worker-count independence.
func TestRunExperimentsDeterministic(t *testing.T) {
	opts := ExperimentOptions{Figures: []string{"2a", "3"}, Seed: 7}
	opts.Workers = 1
	a, err := RunExperiments(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	b, err := RunExperiments(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Output != b[i].Output {
			t.Fatalf("figure %s differs between workers=1 and workers=8", a[i].Name)
		}
	}
}

// TestConcurrentFleetUnderInjection stresses the online control plane the
// way the fleet simulator exercises it, but concurrently: starters and
// stoppers race against EMC-failure injection and host drains on a sparse
// topology. Run with -race: the coarse lock must keep blast-radius
// accounting, drain migration, and slice release consistent.
func TestConcurrentFleetUnderInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsePredictions = false
	cfg.Topology = "sparse"
	cfg.EMCs = 4
	cfg.PodDegree = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churn: start/stop VMs from several goroutines.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				vm, err := sys.StartVM(VMSpec{
					Cores: 2, MemoryGB: 8,
					Workload: "redis-ycsb-a",
					Customer: int32(g + 1),
				})
				if err != nil {
					continue // capacity contention or blast loss; fine
				}
				sys.AdvanceSeconds(1)
				_ = sys.Stats()
				// The VM may already be gone to an injected EMC failure.
				_ = sys.StopVM(vm.ID)
			}
		}(g)
	}
	// Injector: drain/undrain hosts and fail an EMC mid-churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 10; i++ {
			h := i % cfg.Hosts
			if _, _, err := sys.DrainHost(h); err != nil {
				t.Errorf("DrainHost(%d): %v", h, err)
				return
			}
			_ = sys.Describe()
			if err := sys.UndrainHost(h); err != nil {
				t.Errorf("UndrainHost(%d): %v", h, err)
				return
			}
			if i == 5 {
				if _, err := sys.InjectEMCFailure(1); err != nil {
					t.Errorf("InjectEMCFailure: %v", err)
					return
				}
				if got := sys.BlastRadiusHosts(1); len(got) == 0 || len(got) == cfg.Hosts {
					t.Errorf("sparse blast radius = %d hosts, want strict subset", len(got))
					return
				}
			}
		}
	}()
	wg.Wait()
	<-stop

	// Drain the survivors; capacity must reconcile.
	st := sys.Stats()
	if st.RunningVMs < 0 {
		t.Fatalf("negative running VM count: %+v", st)
	}
}

// TestRunFleetDeterministicPublicAPI asserts the acceptance contract end
// to end: same seed, different worker counts, byte-identical event log
// and hash — through the public RunFleet facade with injections active.
func TestRunFleetDeterministicPublicAPI(t *testing.T) {
	base := FleetOpts{
		Topology:           "sparse",
		Hosts:              4,
		EMCs:               4,
		PoolGB:             64,
		Cells:              3,
		DurationSec:        400,
		Arrival:            "poisson:rate=0.1:life=200",
		Inject:             "emc-fail@t=200,host-drain@t=300:host=1,surge@t=50:dur=100:x=2",
		DisablePredictions: true,
	}
	a := base
	a.Workers = 1
	ra, err := RunFleet(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	b := base
	b.Workers = 8
	rb, err := RunFleet(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.EventLog != rb.EventLog || ra.LogSHA256 != rb.LogSHA256 {
		t.Fatal("RunFleet event log differs between workers=1 and workers=8")
	}
	if ra.LogSHA256 == "" || ra.Placed == 0 {
		t.Fatalf("degenerate report: %+v", ra.Summary)
	}
	if _, err := RunFleet(context.Background(), FleetOpts{Inject: "bogus@t=1"}); err == nil {
		t.Fatal("bad injection spec accepted")
	}
	if _, err := RunFleet(context.Background(), FleetOpts{Arrival: "bogus"}); err == nil {
		t.Fatal("bad arrival spec accepted")
	}
}

// TestRunFleetRetrainPublicAPI drives the online model-lifecycle loop
// through the public facade: retrain events must appear identically for
// any worker count, and the report must surface model quality and the
// promotion history.
func TestRunFleetRetrainPublicAPI(t *testing.T) {
	base := FleetOpts{
		Hosts:           4,
		EMCs:            4,
		PoolGB:          128,
		Cells:           2,
		DurationSec:     1200,
		Arrival:         "poisson:rate=0.2:life=200",
		Inject:          "drift@t=600:mag=0.6",
		RetrainEverySec: 300,
		MinTrainRows:    16,
		CaptureModels:   true,
	}
	a := base
	a.Workers = 1
	ra, err := RunFleet(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	b := base
	b.Workers = 8
	rb, err := RunFleet(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.EventLog != rb.EventLog || ra.LogSHA256 != rb.LogSHA256 {
		t.Fatal("retrain-enabled event log differs between workers=1 and workers=8")
	}
	if ra.Retrains == 0 || len(ra.PromotionHistory) == 0 {
		t.Fatalf("lifecycle missing from public report: retrains=%d history=%d",
			ra.Retrains, len(ra.PromotionHistory))
	}
	if !strings.Contains(ra.EventLog, "mlops um retrain") {
		t.Fatal("retrain events missing from the public event log")
	}
	if len(ra.ModelsJSON) != base.Cells {
		t.Fatalf("model dumps = %d, want one per cell", len(ra.ModelsJSON))
	}
	if ra.PredErrMean <= 0 {
		t.Fatalf("prediction error not surfaced: %+v", ra.PredErrMean)
	}
	if _, err := RunFleet(context.Background(), FleetOpts{
		RetrainEverySec: 100, DisablePredictions: true,
	}); err == nil {
		t.Fatal("retraining without predictions accepted")
	}
}

// TestRunFleetElasticPublicAPI drives the elastic capacity loop through
// the public facade: planning decisions appear identically for any
// worker count, and the report surfaces the savings metrics and plan
// history together with a manual resize injection.
func TestRunFleetElasticPublicAPI(t *testing.T) {
	base := FleetOpts{
		Hosts:        4,
		EMCs:         4,
		PoolGB:       128,
		Cells:        2,
		DurationSec:  800,
		Arrival:      "poisson:rate=0.2:life=200",
		Inject:       "resize@t=150:emc=1:slices=-8",
		ElasticPool:  true,
		PlanEverySec: 200,
		TargetQoS:    0.01,
	}
	a := base
	a.Workers = 1
	ra, err := RunFleet(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	b := base
	b.Workers = 8
	rb, err := RunFleet(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.EventLog != rb.EventLog || ra.LogSHA256 != rb.LogSHA256 {
		t.Fatal("elastic event log differs between workers=1 and workers=8")
	}
	if len(ra.PlanHistory) == 0 {
		t.Fatal("plan history missing from the public report")
	}
	if ra.DRAMSavedGB <= 0 || ra.FinalPoolGB >= base.PoolGB*base.Cells {
		t.Fatalf("elastic pool banked no savings: saved=%.2f final=%d", ra.DRAMSavedGB, ra.FinalPoolGB)
	}
	if !strings.Contains(ra.EventLog, "inject resize emc=1") {
		t.Fatal("resize injection missing from the public event log")
	}
	if !strings.Contains(ra.Summary, "elastic:") {
		t.Fatalf("summary missing the elastic line:\n%s", ra.Summary)
	}
	// Elastic knobs without the elastic pool are rejected.
	if _, err := RunFleet(context.Background(), FleetOpts{PlanEverySec: 100}); err == nil {
		t.Fatal("plan cadence without ElasticPool accepted")
	}
}
