module pond

go 1.21
