module pond

go 1.22
