# Multi-stage build for pondserve, the live fleet control-plane daemon.
# The builder compiles a static binary; the runtime stage carries only
# that binary, a non-root user, and a writable state directory for the
# SIGTERM checkpoint.
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/pondserve ./cmd/pondserve

FROM alpine:3.20
RUN adduser -D -u 10001 pond && mkdir -p /var/lib/pond && chown pond /var/lib/pond
COPY --from=build /out/pondserve /usr/local/bin/pondserve
USER pond
VOLUME /var/lib/pond
EXPOSE 8080
HEALTHCHECK --interval=10s --timeout=3s --start-period=5s \
    CMD ["pondserve", "-check", "-addr", ":8080"]
ENTRYPOINT ["pondserve"]
CMD ["-addr", ":8080", "-state", "/var/lib/pond/checkpoint.json"]
