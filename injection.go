package pond

import (
	"encoding/json"
	"strings"

	"pond/internal/fleet"
)

// Injection is one scheduled scenario event — an EMC failure, host
// drain, demand surge, workload drift, or pool resize. Its canonical
// form is the spec string the -inject flag takes (for example
// "emc-fail@t=500:emc=1"); Parse and String round-trip it, and JSON
// marshals it as that string, so the Go API, the CLI, and pondserve
// request bodies all share one parser and one validation path.
//
// The zero Injection is invalid; construct via ParseInjection.
type Injection struct {
	in fleet.Injection
}

// ParseInjection parses a single scenario spec such as
// "surge@t=300:dur=200:x=3" or "drift@t=2000:mag=0.6:cells=0-1".
func ParseInjection(spec string) (Injection, error) {
	in, err := fleet.ParseInjection(spec)
	if err != nil {
		return Injection{}, err
	}
	return Injection{in: in}, nil
}

// ParseInjections parses a comma-separated scenario list; an empty
// string yields nil.
func ParseInjections(s string) ([]Injection, error) {
	ins, err := fleet.ParseInjections(s)
	if err != nil {
		return nil, err
	}
	if len(ins) == 0 {
		return nil, nil
	}
	out := make([]Injection, len(ins))
	for i := range ins {
		out[i] = Injection{in: ins[i]}
	}
	return out, nil
}

// String renders the canonical spec; ParseInjection(in.String())
// reproduces the injection exactly.
func (in Injection) String() string { return in.in.String() }

// Kind is the scenario kind: "emc-fail", "host-drain", "surge",
// "drift", or "resize".
func (in Injection) Kind() string { return in.in.Kind }

// AtSec is the simulated time the injection fires.
func (in Injection) AtSec() float64 { return in.in.AtSec }

// MarshalJSON encodes the injection as its canonical spec string.
func (in Injection) MarshalJSON() ([]byte, error) {
	return json.Marshal(in.in.String())
}

// UnmarshalJSON decodes a spec string, running the same parser and
// checks as the CLI flag.
func (in *Injection) UnmarshalJSON(data []byte) error {
	var spec string
	if err := json.Unmarshal(data, &spec); err != nil {
		return err
	}
	parsed, err := fleet.ParseInjection(spec)
	if err != nil {
		return err
	}
	in.in = parsed
	return nil
}

// specsOf renders a list as its comma-separated spec form — the
// comparable canonical string the deprecated Inject field is matched
// against.
func specsOf(ins []Injection) string {
	specs := make([]string, len(ins))
	for i := range ins {
		specs[i] = ins[i].String()
	}
	return strings.Join(specs, ",")
}
