// Package pond is the public API of this reproduction of "Pond: CXL-Based
// Memory Pooling Systems for Cloud Platforms" (ASPLOS 2023).
//
// The package wires the full stack together — external memory controllers
// (EMCs), the Pool Manager, hypervisor hosts with zNUMA support, guest
// memory managers, PMU telemetry, the two prediction models, and the QoS
// monitoring/mitigation pipeline — behind a System facade that admits and
// releases VMs against simulated time.
//
// A minimal session:
//
//	sys, err := pond.NewSystem(pond.DefaultConfig())
//	vm, err := sys.StartVM(pond.VMSpec{Cores: 8, MemoryGB: 32, Workload: "redis-ycsb-a"})
//	fmt.Println(vm.Topology)      // numactl-style zNUMA view
//	report := sys.RunQoSSweep()   // monitoring + mitigation pass
//	sys.StopVM(vm.ID)
//
// The experiment entry points that regenerate the paper's figures live in
// internal/experiments and are exposed through the cmd/ tools and the
// repository benchmarks.
package pond

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pond/internal/cluster"
	"pond/internal/core"
	"pond/internal/cxl"
	"pond/internal/emc"
	"pond/internal/guest"
	"pond/internal/host"
	"pond/internal/pmu"
	"pond/internal/pool"
	"pond/internal/predict"
	"pond/internal/stats"
	"pond/internal/telemetry"
	"pond/internal/topo"
	"pond/internal/workload"
)

// Config describes a Pond deployment: a group of dual-socket hosts
// sharing one or more multi-headed EMCs.
type Config struct {
	// Hosts is the number of servers in the pool group. With two
	// sockets per server, 8 hosts form the paper's 16-socket pool.
	Hosts int

	// CoresPerSocket and MemGBPerSocket size each server's NUMA nodes.
	CoresPerSocket int
	MemGBPerSocket float64

	// PoolGB is the EMC capacity shared by the group.
	PoolGB int

	// EMCs shards the pool capacity across devices (blast-radius
	// isolation).
	EMCs int

	// Topology names the host-to-EMC connectivity graph: "flat" (every
	// host reaches every EMC — the paper's pool group; the default),
	// "sharded" (disjoint partitions, one EMC each), or "sparse"
	// (Octopus-style overlapping pods of PodDegree EMCs per host).
	Topology string

	// PodDegree is the per-host EMC connection count under the sparse
	// topology; <= 0 defaults to 2.
	PodDegree int

	// PDM is the performance degradation margin (fraction; 0.05 = 5%).
	PDM float64

	// TargetPercentile is the share of VMs that must meet the PDM.
	TargetPercentile float64

	// UsePredictions enables the ML scheduling pipeline. When false,
	// every VM is allocated entirely on local memory (the no-pooling
	// baseline).
	UsePredictions bool

	// Seed drives all stochastic components.
	Seed int64
}

// DefaultConfig returns the paper's headline deployment: an 8-host
// (16-socket) pool with PDM=5% and TP=98%.
func DefaultConfig() Config {
	return Config{
		Hosts:            8,
		CoresPerSocket:   24,
		MemGBPerSocket:   192,
		PoolGB:           1024,
		EMCs:             2,
		PDM:              0.05,
		TargetPercentile: 0.98,
		UsePredictions:   true,
		Seed:             1,
	}
}

// VMSpec is a VM start request.
type VMSpec struct {
	Cores    int
	MemoryGB float64
	// Workload names a catalogue entry (see pond.Workloads). It stands
	// in for what actually runs inside the opaque VM; the platform only
	// observes it through telemetry.
	Workload string
	// Customer groups VMs for history-based predictions.
	Customer int32
	// UntouchedFrac optionally fixes the ground-truth fraction of
	// memory the VM never touches; negative means "derive from the
	// workload footprint".
	UntouchedFrac float64
}

// VM is a running VM handle.
type VM struct {
	ID       int64
	Host     int
	Spec     VMSpec
	LocalGB  float64
	PoolGB   float64
	Decision string
	// Topology is the guest-visible NUMA layout (Figure 10).
	Topology string
	// ZNUMATrafficFrac is the fraction of the VM's memory accesses
	// served by the zNUMA node under the guest's local-preferred
	// allocation.
	ZNUMATrafficFrac float64
	// SlowdownFrac is the realized slowdown versus all-local placement.
	SlowdownFrac float64
}

// SystemStats summarizes the deployment.
type SystemStats struct {
	RunningVMs     int
	PoolFreeGB     int
	PoolUsedGB     float64
	StrandedGB     float64
	LocalFreeGB    float64
	Mitigations    int
	PoolLatency    string
	AccessLatencyN float64
}

// System is a live Pond deployment. All methods are safe for concurrent
// use: one coarse lock serializes the control plane, mirroring the
// paper's single Pool Manager per pool group.
type System struct {
	cfg       Config
	topology  *topo.Topology
	devices   []*emc.Device
	manager   *pool.Manager
	hosts     []*host.Host
	scheduler *core.ClusterScheduler
	pipeline  *core.Pipeline
	monitor   *core.QoSMonitor
	store     *telemetry.Store
	rng       *stats.Rand

	mu          sync.Mutex
	nowSec      float64
	nextVM      int64
	vms         map[int64]*vmState
	mitigations int
}

type vmState struct {
	handle    *VM
	host      int
	placement *host.Placement
	workload  workload.Workload
	slices    []pool.SliceRef
}

// NewSystem builds and boots a deployment.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Hosts <= 0 || cfg.CoresPerSocket <= 0 || cfg.MemGBPerSocket <= 0 {
		return nil, fmt.Errorf("pond: invalid host configuration %+v", cfg)
	}
	if cfg.EMCs <= 0 {
		cfg.EMCs = 1
	}
	if cfg.PoolGB < cfg.EMCs {
		return nil, fmt.Errorf("pond: pool of %d GB cannot shard across %d EMCs", cfg.PoolGB, cfg.EMCs)
	}
	s := &System{
		cfg: cfg,
		rng: stats.NewRand(cfg.Seed),
		vms: make(map[int64]*vmState),
	}
	tp, err := topo.Build(cfg.Topology, cfg.Hosts, cfg.EMCs, cfg.PodDegree)
	if err != nil {
		return nil, fmt.Errorf("pond: %w", err)
	}
	s.topology = tp
	perEMC := cfg.PoolGB / cfg.EMCs
	for i := 0; i < cfg.EMCs; i++ {
		s.devices = append(s.devices, emc.NewDevice(fmt.Sprintf("emc%d", i), perEMC, cfg.Hosts))
	}
	s.manager = pool.NewManagerTopo(s.devices, tp.Conn(), s.rng.Fork(1))

	sockets := cfg.Hosts * 2
	ratio := cxl.PondLatencyRatio(sockets)
	spec := cluster.ServerSpec{Sockets: 2, CoresPerSock: cfg.CoresPerSocket, MemGBPerSock: cfg.MemGBPerSocket}
	for i := 0; i < cfg.Hosts; i++ {
		s.hosts = append(s.hosts, host.New(emc.HostID(i), spec, host.Config{
			PoolLatencyRatio: ratio,
			EnablePageTables: true,
		}))
	}

	s.store = telemetry.NewStore()
	pcfg := core.DefaultConfig()
	pcfg.Ratio = ratio
	pcfg.PDM = cfg.PDM
	pcfg.TP = cfg.TargetPercentile

	var insens predict.Insensitivity
	var um predict.Untouched
	if cfg.UsePredictions {
		ds := predict.BuildSensitivityDataset(ratio, cfg.PDM, 3, cfg.Seed)
		rf := predict.TrainForest(ds.X, ds.Insensitive, cfg.Seed)
		pcfg.InsensScoreThreshold = predict.ThresholdForLabelRate(predict.DatasetScores(rf, ds), 0.30)
		insens = rf
		um = predict.HistoryQuantileUM{}
	}
	s.pipeline = core.NewPipeline(pcfg, insens, um, s.store)
	s.monitor = core.NewQoSMonitor(pcfg, insens)
	s.scheduler = core.NewClusterScheduler(s.hosts, s.manager)
	return s, nil
}

// Workloads lists the catalogue names usable in VMSpec.Workload.
func Workloads() []string {
	var out []string
	for _, w := range workload.Catalogue() {
		out = append(out, w.Name)
	}
	return out
}

// AdvanceSeconds moves simulated time forward.
func (s *System) AdvanceSeconds(sec float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sec > 0 {
		s.nowSec += sec
	}
}

// Now returns the current simulated time in seconds.
func (s *System) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nowSec
}

// ErrNoCapacity is returned when no host can place the VM.
var ErrNoCapacity = errors.New("pond: no host with sufficient capacity")

// StartVM admits a VM: the control plane decides its local/pool split,
// the Pool Manager onlines slices, the hypervisor builds the (z)NUMA
// topology, and the guest boots its memory manager.
func (s *System) StartVM(spec VMSpec) (*VM, error) {
	w, ok := workload.ByName(spec.Workload)
	if !ok {
		if spec.Workload != "" {
			return nil, fmt.Errorf("pond: unknown workload %q (see pond.Workloads)", spec.Workload)
		}
		w, _ = workload.ByName("P5-web")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	untouched := spec.UntouchedFrac
	if untouched < 0 || untouched > 1 {
		untouched = 1 - stats.Clamp(w.FootprintGB/spec.MemoryGB, 0, 1)
	}
	s.nextVM++
	vmReq := cluster.VMRequest{
		ID:       cluster.VMID(s.nextVM),
		Customer: cluster.CustomerID(spec.Customer),
		Type:     cluster.VMType{Name: "custom", Cores: spec.Cores, MemoryGB: spec.MemoryGB},
		OS:       "linux",
		Region:   "local",
		// The facade treats every VM as first-party.
		WorkloadName: w.Name,
		ArrivalSec:   s.nowSec,
		GroundTruth: cluster.VMGroundTruth{
			UntouchedFrac: untouched,
			Workload:      w,
		},
	}

	// Scheduling decision (Figure 13 A): history counters when the
	// customer has completed VMs before.
	var counters *pmu.Vector
	h := s.store.CustomerHistory(vmReq.Customer, s.nowSec+1, predict.HistoryWindowSec)
	if h.Count > 0 {
		v := pmu.Sample(w, s.rng)
		counters = &v
	}
	decision := s.pipeline.Decide(vmReq, counters, predict.UMFeatures(vmReq, h))

	// Scheduling (A3-A4): bin packing with pool memory as an extra
	// dimension; slices are onlined before the VM starts and the
	// scheduler falls back to all-local when the pool is exhausted.
	res, err := s.scheduler.Place(vmReq, decision, s.nowSec)
	if err != nil {
		if errors.Is(err, core.ErrNoHost) {
			return nil, ErrNoCapacity
		}
		return nil, fmt.Errorf("pond: placement failed: %w", err)
	}
	hostIdx := res.HostIndex
	placement := res.Placement
	if res.FellBackToLocal {
		decision = core.Decision{Kind: core.AllLocal, LocalGB: spec.MemoryGB}
	}
	slices := placement.Slices

	// Boot the guest and measure where its accesses land.
	mm := guest.Boot(placement.Topology, guest.LocalPreferred)
	touched := spec.MemoryGB * (1 - untouched)
	access, aerr := mm.RunWorkload(w, stats.Clamp(touched, 0, mm.TotalFreeGB()))
	if aerr != nil {
		access = guest.AccessStats{LocalFrac: 1}
	}
	outcome := s.pipeline.Evaluate(vmReq, decision)

	// Record hypervisor telemetry.
	if placement.PageTable != nil {
		placement.PageTable.TouchRange(0, touched)
	}
	s.store.RecordSample(vmReq.ID, pmu.Sample(w, s.rng))

	handle := &VM{
		ID:               int64(vmReq.ID),
		Host:             hostIdx,
		Spec:             spec,
		LocalGB:          placement.LocalGB,
		PoolGB:           placement.PoolGB,
		Decision:         decision.Kind.String(),
		Topology:         placement.Topology.String(),
		ZNUMATrafficFrac: access.ZNUMAFrac,
		SlowdownFrac:     outcome.SlowdownFrac,
	}
	s.vms[handle.ID] = &vmState{
		handle:    handle,
		host:      hostIdx,
		placement: placement,
		workload:  w,
		slices:    slices,
	}
	// Callers get a snapshot: the live handle keeps changing under the
	// system lock (QoS mitigations move memory around).
	snapshot := *handle
	return &snapshot, nil
}

// StopVM releases a VM; its pool slices drain back asynchronously.
func (s *System) StopVM(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.vms[id]
	if !ok {
		return fmt.Errorf("pond: unknown VM %d", id)
	}
	delete(s.vms, id)
	p, err := s.scheduler.Release(st.host, cluster.VMID(id), s.nowSec)
	if err != nil {
		return err
	}
	s.store.RecordOutcome(p.VM.Customer, s.nowSec, p.VM.GroundTruth.UntouchedFrac)
	s.store.ForgetVM(cluster.VMID(id))
	return nil
}

// InjectHostFailure kills a host: its VMs are lost and its pool memory is
// reclaimed for the surviving hosts (§4.2). It returns the lost VM ids.
func (s *System) InjectHostFailure(hostIndex int) ([]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lost, _, err := s.scheduler.HandleHostFailure(hostIndex)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(lost))
	for _, id := range lost {
		out = append(out, int64(id))
		delete(s.vms, int64(id))
		s.store.ForgetVM(id)
	}
	return out, nil
}

// MitigationReport describes one QoS sweep action.
type MitigationReport struct {
	VM            int64
	Overpredicted bool
	Sensitive     bool
	Reconfigured  bool
	// Migrated is set when the VM's own host lacked local headroom and
	// the mitigation live-migrated it to another host (§6.4).
	Migrated    bool
	TargetHost  int
	CopySeconds float64
}

// RunQoSSweep inspects every running VM with fresh counters and applies
// mitigations (Figure 11 B). It returns one report per pool-using VM.
func (s *System) RunQoSSweep() []MitigationReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Sweep VMs in id order: map iteration order would consume the RNG
	// stream nondeterministically and break seed reproducibility.
	ids := make([]int64, 0, len(s.vms))
	for id := range s.vms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []MitigationReport
	for _, id := range ids {
		st := s.vms[id]
		if st.placement.PoolGB == 0 {
			continue
		}
		counters := pmu.Sample(st.workload, s.rng)
		s.store.RecordSample(cluster.VMID(id), counters)
		committed, err := s.hosts[st.host].GuestCommittedGB(cluster.VMID(id))
		if err != nil {
			continue
		}
		verdict := s.monitor.Check(st.placement, committed, counters)
		rep := MitigationReport{
			VM:            id,
			Overpredicted: verdict.Overpredicted,
			Sensitive:     verdict.Sensitive,
		}
		if verdict.NeedsMitigation {
			dur, freed, rerr := s.hosts[st.host].Reconfigure(cluster.VMID(id))
			switch {
			case rerr == nil:
				rep.Reconfigured = true
				rep.CopySeconds = dur
				s.mitigations++
				s.store.MarkSensitive(st.placement.VM.Customer)
				// Freed pool slices return to the manager.
				if freed > 0 && len(st.slices) > 0 {
					_ = s.hosts[st.host].RemovePoolCapacity(freed)
					s.manager.ReleaseCapacity(emc.HostID(st.host), st.slices, s.nowSec)
					st.slices = nil
				}
				st.handle.LocalGB += st.handle.PoolGB
				st.handle.PoolGB = 0
			default:
				// No local headroom: live-migrate to a host that can
				// take the VM entirely locally (§6.4).
				if target := s.migrationTarget(st); target >= 0 {
					mdur, slices, merr := host.LiveMigrate(s.hosts[st.host], s.hosts[target], cluster.VMID(id))
					if merr == nil {
						rep.Migrated = true
						rep.TargetHost = target
						rep.CopySeconds = mdur
						s.mitigations++
						s.store.MarkSensitive(st.placement.VM.Customer)
						if len(slices) > 0 {
							s.manager.ReleaseCapacity(emc.HostID(st.host), slices, s.nowSec)
						}
						s.recordLocalMigration(st, cluster.VMID(id), target)
					}
				}
			}
		}
		out = append(out, rep)
	}
	return out
}

// recordLocalMigration updates a vmState after a live migration landed
// the VM all-local on target: the handle's pool memory folds into local
// and the placement pointer refreshes to the destination host's copy.
func (s *System) recordLocalMigration(st *vmState, id cluster.VMID, target int) {
	st.slices = nil
	st.host = target
	if p, ok := s.hosts[target].Placement(id); ok {
		st.placement = p
	}
	st.handle.Host = target
	st.handle.LocalGB += st.handle.PoolGB
	st.handle.PoolGB = 0
}

// migrationTarget picks a host with room for the VM's full memory
// locally, or -1.
func (s *System) migrationTarget(st *vmState) int {
	vm := st.placement.VM
	for i, h := range s.hosts {
		if i == st.host || s.scheduler.Drained(i) {
			continue
		}
		if h.FreeCores() >= vm.Type.Cores && h.FreeLocalGB() >= vm.Type.MemoryGB {
			return i
		}
	}
	return -1
}

// DrainHost puts a host into maintenance drain: it stops receiving new
// placements and its VMs are live-migrated to hosts with all-local
// headroom (core.ClusterScheduler.DrainHost). VMs that fit nowhere stay
// on the draining host and are returned as remaining.
func (s *System) DrainHost(hostIndex int) (migrated, remaining []int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	migrations, left, err := s.scheduler.DrainHost(hostIndex, s.nowSec)
	if err != nil {
		return nil, nil, fmt.Errorf("pond: %w", err)
	}
	for _, m := range migrations {
		id := int64(m.VM)
		migrated = append(migrated, id)
		if st, ok := s.vms[id]; ok {
			s.recordLocalMigration(st, m.VM, m.Target)
		}
	}
	for _, id := range left {
		remaining = append(remaining, int64(id))
	}
	return migrated, remaining, nil
}

// UndrainHost returns a drained host to service.
func (s *System) UndrainHost(hostIndex int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduler.SetDrained(hostIndex, false)
}

// BlastRadiusHosts returns the hosts wired to an EMC — the set a failure
// of that device can reach under the configured topology (§4.2).
func (s *System) BlastRadiusHosts(emcIndex int) []int {
	return append([]int(nil), s.topology.HostsFor(emcIndex)...)
}

// TopologyName returns the configured host-to-EMC topology.
func (s *System) TopologyName() string { return s.topology.Name() }

// Stats summarizes the deployment state.
func (s *System) Stats() SystemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// statsLocked computes SystemStats; the caller holds s.mu.
func (s *System) statsLocked() SystemStats {
	st := SystemStats{
		RunningVMs:  len(s.vms),
		PoolFreeGB:  s.manager.FreeGB(s.nowSec),
		Mitigations: s.mitigations,
	}
	for _, h := range s.hosts {
		st.StrandedGB += h.StrandedGB()
		st.LocalFreeGB += h.FreeLocalGB()
		st.PoolUsedGB += h.OnlinePoolGB() - h.FreePoolGB()
	}
	path := cxl.PondPathClamped(s.cfg.Hosts * 2)
	st.PoolLatency = path.String()
	st.AccessLatencyN = path.TotalNanos()
	return st
}

// VMInfo returns a snapshot of a running VM's state.
func (s *System) VMInfo(id int64) (*VM, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.vms[id]
	if !ok {
		return nil, false
	}
	snapshot := *st.handle
	return &snapshot, true
}

// InjectEMCFailure fails one EMC and returns the IDs of the VMs whose
// memory was on it — the blast radius (§4.2). Affected VMs are stopped.
func (s *System) InjectEMCFailure(emcIndex int) ([]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if emcIndex < 0 || emcIndex >= len(s.devices) {
		return nil, fmt.Errorf("pond: no EMC %d", emcIndex)
	}
	s.devices[emcIndex].Fail()
	var affected []int64
	for id, st := range s.vms {
		for _, ref := range st.slices {
			if ref.EMC == emcIndex {
				affected = append(affected, id)
				break
			}
		}
	}
	// Deterministic blast-radius order (map iteration order is random).
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	for _, id := range affected {
		st := s.vms[id]
		delete(s.vms, id)
		if p, err := s.hosts[st.host].ReleaseVM(cluster.VMID(id)); err == nil {
			_ = s.hosts[st.host].RemovePoolCapacity(float64(len(p.Slices)))
			// Slices on the dead device are gone with it; survivors on
			// healthy EMCs drain back to the pool instead of staying
			// owned forever.
			var alive []pool.SliceRef
			for _, ref := range p.Slices {
				if ref.EMC != emcIndex {
					alive = append(alive, ref)
				}
			}
			if len(alive) > 0 {
				s.manager.ReleaseCapacity(emc.HostID(st.host), alive, s.nowSec)
			}
		}
		s.store.ForgetVM(cluster.VMID(id))
	}
	return affected, nil
}

// Describe renders a one-screen summary of the deployment: topology,
// latency, pool state, and control-plane configuration.
func (s *System) Describe() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.statsLocked()
	mode := "predictions enabled"
	if !s.cfg.UsePredictions {
		mode = "all-local (no predictions)"
	}
	return fmt.Sprintf(
		"Pond deployment: %d hosts x 2 sockets (%d cores, %.0f GB local each)\n"+
			"topology: %s\n"+
			"pool: %d GB across %d EMC(s); %d GB free\n"+
			"latency: %s\n"+
			"control plane: PDM=%.0f%%, TP=%.0f%%, %s\n"+
			"running: %d VMs, %d mitigations so far",
		s.cfg.Hosts, 2*s.cfg.CoresPerSocket, 2*s.cfg.MemGBPerSocket,
		s.topology.Describe(),
		s.cfg.PoolGB, len(s.devices), st.PoolFreeGB,
		st.PoolLatency,
		100*s.cfg.PDM, 100*s.cfg.TargetPercentile, mode,
		st.RunningVMs, st.Mitigations)
}
