// Command pondtrace generates synthetic cluster traces (the stand-in for
// the paper's Azure production dataset), saves them as JSON, and
// summarizes saved trace files. Generating a paper-scale fleet once and
// re-reading it keeps repeated experiments fast and byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"

	"pond/internal/cliutil"
	"pond/internal/cluster"
	"pond/internal/sim"
	"pond/internal/stats"
)

func main() {
	gen := flag.String("generate", "", "generate traces and write JSON to this file")
	summarize := flag.String("summarize", "", "read a trace JSON file and print per-cluster summaries")
	clusters := flag.Int("clusters", 24, "clusters to generate")
	days := flag.Int("days", 75, "trace days")
	servers := flag.Int("servers", 16, "servers per cluster")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	if *clusters < 1 || *days < 1 || *servers < 1 {
		cliutil.Fatal("pondtrace", fmt.Errorf("-clusters, -days, and -servers must be >= 1 (got %d, %d, %d)",
			*clusters, *days, *servers))
	}
	if err := cliutil.ValidateSeed(*seed); err != nil {
		cliutil.Fatal("pondtrace", err)
	}

	switch {
	case *gen != "":
		cfg := cluster.DefaultGenConfig()
		cfg.Clusters = *clusters
		cfg.Days = *days
		cfg.ServersPerCluster = *servers
		cfg.Seed = *seed
		traces := cluster.Generate(cfg)
		f, err := os.Create(*gen)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := cluster.WriteJSON(f, traces); err != nil {
			fatal(err)
		}
		total := 0
		for _, tr := range traces {
			total += len(tr.VMs)
		}
		fmt.Printf("wrote %d clusters (%d VMs) to %s\n", len(traces), total, *gen)

	case *summarize != "":
		f, err := os.Open(*summarize)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		traces, err := cluster.ReadJSON(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s %6s %8s %8s %10s %10s\n",
			"cluster", "VMs", "days", "shock", "reject", "stranded")
		for i := range traces {
			tr := &traces[i]
			sched := sim.BuildSchedule(tr)
			series := sim.StrandingSeries(sched)
			var stranded []float64
			for _, s := range series {
				stranded = append(stranded, 100*s.StrandedMemFrac)
			}
			shock := "-"
			if tr.ShockDay > 0 {
				shock = fmt.Sprintf("d%d", tr.ShockDay)
			}
			fmt.Printf("%-14s %6d %8d %8s %9.2f%% %9.1f%%\n",
				tr.Name, len(tr.VMs), tr.Days, shock,
				100*sched.RejectionRate(), stats.Mean(stranded))
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pondtrace:", err)
	os.Exit(1)
}
