// Command pondsim runs the trace-driven cluster simulations: stranding
// versus utilization (Figure 2a), stranding over time (Figure 2b), the
// pool-size impact table (Figure 3), the end-to-end savings evaluation
// (Figure 21), the offlining-speed distribution (Finding 10), and the
// pool-headroom ablation.
//
// All pipelines run on the parallel deterministic engine: -workers bounds
// the pool (output is byte-identical for any value), -seed reroots every
// stream. -sweep evaluates a scenario matrix across scales and policies
// instead of individual figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pond/internal/cliutil"
	"pond/internal/experiments"
)

func main() {
	figs := flag.String("figures", "2a,2b,3,21,finding10,ablation-async",
		"comma-separated list of figures to print (2a,2b,3,21,finding10,ablation-async)")
	scaleFlag := flag.String("scale", "quick", "trace scale: quick, full, paper, or tiny")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS); results are identical for any value")
	seed := flag.Int64("seed", experiments.DefaultSeed, "root seed for every generation and training stream")
	sweep := flag.String("sweep", "", `scenario matrix, e.g. "scale=quick,full x policy=pooled,static"`)
	flag.Parse()

	cliutil.MustValidateRun("pondsim", *workers, *seed)

	opts := []experiments.Option{
		experiments.WithWorkers(*workers),
		experiments.WithSeed(*seed),
	}

	if *sweep != "" {
		spec, err := experiments.ParseSweep(*sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pondsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(experiments.RunSweep(spec, opts...))
		return
	}

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pondsim: %v\n", err)
		os.Exit(2)
	}
	names := strings.Split(*figs, ",")
	for i, n := range names {
		// Accept the legacy name for the pool-headroom ablation.
		if strings.TrimSpace(n) == "ablation" {
			names[i] = "ablation-async"
		}
	}
	defs, err := experiments.Lookup(names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pondsim: %v\n", err)
		os.Exit(2)
	}
	for _, d := range defs {
		fmt.Println(d.Run(scale, opts...))
	}
}
