// Command pondsim runs the trace-driven cluster simulations: stranding
// versus utilization (Figure 2a), stranding over time (Figure 2b), the
// pool-size impact table (Figure 3), the end-to-end savings evaluation
// (Figure 21), the offlining-speed distribution (Finding 10), and the
// pool-headroom ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pond/internal/experiments"
)

func main() {
	figs := flag.String("figures", "2a,2b,3,21,finding10,ablation",
		"comma-separated list of figures to print (2a,2b,3,21,finding10,ablation)")
	scaleFlag := flag.String("scale", "quick", "trace scale: quick, full, or paper")
	flag.Parse()

	scale := parseScale(*scaleFlag)
	for _, f := range strings.Split(*figs, ",") {
		switch strings.TrimSpace(f) {
		case "2a":
			fmt.Println(experiments.Figure2a(scale))
		case "2b":
			fmt.Println(experiments.Figure2b(scale))
		case "3":
			fmt.Println(experiments.Figure3(scale))
		case "21":
			fmt.Println(experiments.Figure21(scale))
		case "finding10":
			fmt.Println(experiments.Finding10(scale))
		case "ablation":
			fmt.Println(experiments.AblationAsyncRelease(scale))
		case "":
		default:
			fmt.Fprintf(os.Stderr, "pondsim: unknown figure %q\n", f)
			os.Exit(2)
		}
	}
}

func parseScale(s string) experiments.Scale {
	switch s {
	case "quick":
		return experiments.ScaleQuick
	case "paper":
		return experiments.ScalePaper
	default:
		return experiments.ScaleFull
	}
}
