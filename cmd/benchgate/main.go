// Command benchgate is the CI benchmark-regression gate. It times a
// short, deterministic fleet-simulation smoke run with testing.Benchmark,
// emits the measurements as BENCH_fleet.json (the CI artifact that gives
// the repo a performance trajectory), and fails — exit 1 — when any
// gated metric regresses more than -tolerance against the committed
// baseline.
//
//	benchgate                              # measure, gate against BENCH_baseline.json
//	benchgate -update                      # refresh the committed baseline
//	benchgate -bench bench.txt             # also fold `go test -bench` output into the artifact
//
// Gated metrics: fleet_ns_per_op, fleet_allocs_per_op (lower is better),
// fleet_vms_per_sec (VMs placed per wall-clock second; higher is
// better), retrain_ns_per_op (the mlops model-lifecycle hot path —
// shadow scoring, holdout bookkeeping, challenger training — over a
// fixed synthetic stream), rollout_ns_per_op (the fleet pipeline's
// staged-rollout hot path: cross-cell corpus pooling, canary
// bookkeeping, release training, verdicts), and plan_ns_per_op (the
// elastic-capacity hot path: demand accumulation, controller targeting,
// Pool Manager grow/shrink against real EMC devices).
//
// Timing metrics gate with the wide -tolerance (default 20%) because CI
// runners are noisy. The *_allocs_per_op metrics gate with the separate
// -alloc-tolerance (default 2%): allocation counts are a deterministic
// function of the code, so even a small increase is a real regression —
// this is the tripwire protecting the zero-alloc steady-state hot path.
//
// Raw `go test -bench` lines ride along in the artifact for
// trend dashboards but are not gated — they are too machine-dependent
// for a hard threshold, whereas the fleet smoke is gated because its
// work is fixed and deterministic. After an intentional perf change,
// refresh with: go run ./cmd/benchgate -update.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"pond/internal/capacity"
	"pond/internal/fleet"
	"pond/internal/mlops"
	"pond/internal/mlops/fleetpipeline"
)

// Metric is one measured value with its comparison direction.
type Metric struct {
	Value          float64 `json:"value"`
	HigherIsBetter bool    `json:"higher_is_better"`
}

// Result is the artifact schema.
type Result struct {
	Schema  string             `json:"schema"`
	Metrics map[string]Metric  `json:"metrics"`
	GoBench map[string]float64 `json:"go_bench_ns_per_op,omitempty"`
}

// smokeOptions is the fixed workload the gate times: small enough for CI,
// big enough to exercise arrivals, departures, and every injection kind.
func smokeOptions() fleet.Options {
	o := fleet.DefaultOptions()
	o.Cells = 2
	o.Hosts = 4
	o.EMCs = 4
	o.PoolGB = 64
	o.DurationSec = 600
	o.Arrival = fleet.ArrivalModel{Kind: fleet.ArrivalPoisson, RatePerSec: 0.2, MeanLifetimeSec: 200}
	o.Predictions = false // gate the event loop, not model training
	o.Workers = 1         // single worker: CI runners have unpredictable core counts
	inj, err := fleet.ParseInjections("surge@t=100:dur=100:x=3,emc-fail@t=300,host-drain@t=400:host=1")
	if err != nil {
		panic(err)
	}
	o.Injections = inj
	return o
}

func main() {
	out := flag.String("out", "BENCH_fleet.json", "artifact path for the measured metrics")
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline to gate against")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression per timing metric")
	allocTolerance := flag.Float64("alloc-tolerance", 0.02, "allowed fractional regression per *_allocs_per_op metric (allocation counts are deterministic, so the gate is tight)")
	update := flag.Bool("update", false, "write the measurements to -baseline and exit")
	benchFile := flag.String("bench", "", "optional `go test -bench` output to fold into the artifact")
	summary := flag.String("summary", "", "optional path to append a Markdown before/after delta table (CI passes $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	if *tolerance < 0 || *allocTolerance < 0 {
		fmt.Fprintf(os.Stderr, "benchgate: tolerances must be >= 0, got -tolerance=%g -alloc-tolerance=%g\n", *tolerance, *allocTolerance)
		os.Exit(2)
	}

	res := Result{Schema: "pond-bench/v1", Metrics: measureFleet()}
	for name, m := range measureRetrain() {
		res.Metrics[name] = m
	}
	for name, m := range measureRollout() {
		res.Metrics[name] = m
	}
	for name, m := range measurePlan() {
		res.Metrics[name] = m
	}
	if *benchFile != "" {
		gb, err := parseGoBench(*benchFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		res.GoBench = gb
	}

	if err := writeJSON(*out, res); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("benchgate: wrote %s\n", *out)
	for _, name := range sortedKeys(res.Metrics) {
		fmt.Printf("  %-22s %14.1f\n", name, res.Metrics[name].Value)
	}

	if *update {
		if err := writeJSON(*baseline, res); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: baseline %s refreshed\n", *baseline)
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("benchgate: no baseline at %s; run with -update to create one (not gating)\n", *baseline)
			return
		}
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	var regressions []string
	var rows []summaryRow
	for _, name := range sortedKeys(base.Metrics) {
		b := base.Metrics[name]
		cur, ok := res.Metrics[name]
		if !ok {
			fmt.Printf("benchgate: baseline metric %s no longer measured (skipping)\n", name)
			continue
		}
		var worse float64 // fractional regression, positive = worse
		if b.HigherIsBetter {
			worse = (b.Value - cur.Value) / b.Value
		} else {
			worse = (cur.Value - b.Value) / b.Value
		}
		// Timing metrics absorb CI-runner noise with the wide -tolerance;
		// allocation counts are a deterministic function of the code, so
		// they get the tight -alloc-tolerance. A change that quietly
		// re-boxes events or drops a freelist fails here even when the
		// wall clock happens to look fine.
		tol := *tolerance
		if strings.HasSuffix(name, "_allocs_per_op") {
			tol = *allocTolerance
		}
		status := "ok"
		if worse > tol {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f vs baseline %.1f (%+.0f%%, tolerance %.0f%%)",
					name, cur.Value, b.Value, 100*worse, 100*tol))
		}
		fmt.Printf("  %-22s %14.1f baseline %14.1f  %+6.1f%%  %s\n",
			name, cur.Value, b.Value, 100*worse, status)
		rows = append(rows, summaryRow{name: name, base: b.Value, cur: cur.Value, worse: worse, tol: tol, status: status})
	}
	if *summary != "" {
		if err := writeSummary(*summary, rows); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d metric(s) regressed past tolerance:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		fmt.Fprintln(os.Stderr, "benchgate: if intentional, refresh with: go run ./cmd/benchgate -update")
		os.Exit(1)
	}
	fmt.Println("benchgate: within tolerance")
}

// measureFleet times the smoke run and derives the gated metrics.
func measureFleet() map[string]Metric {
	o := smokeOptions()
	var placed int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := fleet.Run(context.Background(), o)
			if err != nil {
				b.Fatal(err)
			}
			placed = rep.Placed
		}
	})
	requireMeasured("fleet", r)
	ns := float64(r.NsPerOp())
	vmsPerSec := 0.0
	if ns > 0 {
		vmsPerSec = float64(placed) / (ns / 1e9)
	}
	return map[string]Metric{
		"fleet_ns_per_op":     {Value: ns, HigherIsBetter: false},
		"fleet_allocs_per_op": {Value: float64(r.AllocsPerOp()), HigherIsBetter: false},
		"fleet_vms_per_sec":   {Value: vmsPerSec, HigherIsBetter: true},
	}
}

// measureRetrain times the mlops model-lifecycle hot path over a fixed
// synthetic stream (512 outcomes, a retrain tick every 64) — the same
// work as BenchmarkRetrainLoop.
func measureRetrain() map[string]Metric {
	cfg := mlops.DefaultConfig()
	cfg.MinTrainRows = 64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if q := mlops.SyntheticLoop(512, 64, cfg); q.Retrains == 0 {
				// panic, not b.Fatal: a Fatal inside testing.Benchmark
				// yields a zero result that would sail through the gate
				// as a massive improvement.
				panic("benchgate: synthetic retrain loop never retrained")
			}
		}
	})
	requireMeasured("retrain", r)
	return map[string]Metric{
		"retrain_ns_per_op":     {Value: float64(r.NsPerOp()), HigherIsBetter: false},
		"retrain_allocs_per_op": {Value: float64(r.AllocsPerOp()), HigherIsBetter: false},
	}
}

// measureRollout times the fleet pipeline's staged-rollout hot path —
// the same work as BenchmarkRolloutLoop: 4 cells feeding one release
// train through 8 retrain barriers of 24 outcomes per cell.
func measureRollout() map[string]Metric {
	cfg := fleetpipeline.DefaultConfig(4)
	cfg.MinTrainRows = 64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if c := fleetpipeline.SyntheticRollout(4, 8, 24, cfg); c.Retrains == 0 {
				// panic, not b.Fatal: a Fatal inside testing.Benchmark
				// yields a zero result that would sail through the gate
				// as a massive improvement.
				panic("benchgate: synthetic rollout never retrained")
			}
		}
	})
	requireMeasured("rollout", r)
	return map[string]Metric{
		"rollout_ns_per_op":     {Value: float64(r.NsPerOp()), HigherIsBetter: false},
		"rollout_allocs_per_op": {Value: float64(r.AllocsPerOp()), HigherIsBetter: false},
	}
}

// measurePlan times the elastic-capacity hot path — the same work as
// BenchmarkPlanLoop: 4 cells' demand waves driving controller targets
// and Pool Manager grow/shrink through 16 planning rounds of 32 demand
// samples each.
func measurePlan() map[string]Metric {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s := capacity.SyntheticPlan(4, 16, 32, 1); s.Grows == 0 || s.Shrinks == 0 {
				// panic, not b.Fatal: a Fatal inside testing.Benchmark
				// yields a zero result that would sail through the gate
				// as a massive improvement.
				panic("benchgate: synthetic plan never resized in both directions")
			}
		}
	})
	requireMeasured("plan", r)
	return map[string]Metric{
		"plan_ns_per_op":     {Value: float64(r.NsPerOp()), HigherIsBetter: false},
		"plan_allocs_per_op": {Value: float64(r.AllocsPerOp()), HigherIsBetter: false},
	}
}

// summaryRow is one gated metric's before/after comparison, rendered
// into the CI job summary.
type summaryRow struct {
	name       string
	base, cur  float64
	worse, tol float64
	status     string
}

// writeSummary appends a Markdown delta table to path. CI passes
// $GITHUB_STEP_SUMMARY so every run shows the baseline comparison on the
// job page without digging through logs or artifacts.
func writeSummary(path string, rows []summaryRow) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "### Benchmark gate: current vs committed baseline")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Metric | Baseline | Current | Δ | Tolerance | Status |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---|")
	for _, r := range rows {
		mark := "✅"
		if r.status != "ok" {
			mark = "❌"
		}
		fmt.Fprintf(w, "| `%s` | %.1f | %.1f | %+.1f%% | %.0f%% | %s %s |\n",
			r.name, r.base, r.cur, 100*r.worse, 100*r.tol, mark, r.status)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Δ is the fractional *regression* (positive = worse, regardless of metric direction).")
	return w.Flush()
}

// requireMeasured exits hard on a zero benchmark result — the signature
// of a b.Fatal swallowed inside testing.Benchmark, which must never be
// gated (or written to a baseline) as an infinitely fast run.
func requireMeasured(name string, r testing.BenchmarkResult) {
	if r.N == 0 || r.NsPerOp() == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s benchmark produced no measurement (failed inside testing.Benchmark?)\n", name)
		os.Exit(2)
	}
}

// parseGoBench extracts "BenchmarkName  N  ns/op" lines from `go test
// -bench` output.
func parseGoBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					out[fields[0]] = v
				}
				break
			}
		}
	}
	return out, sc.Err()
}

func readBaseline(path string) (Result, error) {
	var r Result
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("baseline %s: %w", path, err)
	}
	return r, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortedKeys(m map[string]Metric) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
