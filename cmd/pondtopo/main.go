// Command pondtopo prints the hardware-layer analyses of the paper: the
// EMC resource budget (Figure 6), per-pool-size latency breakdowns
// (Figure 7), the Pond-vs-switch-only comparison (Figure 8), the pool
// management walkthrough (Figure 9), the guest-visible zNUMA topology
// (Figure 10), and the zNUMA-vs-interleaving ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pond/internal/experiments"
)

func main() {
	figs := flag.String("figures", "6,7,8,9,10,ablation,colocation",
		"comma-separated list of figures to print (6,7,8,9,10,ablation,colocation)")
	flag.Parse()

	for _, f := range strings.Split(*figs, ",") {
		switch strings.TrimSpace(f) {
		case "6":
			fmt.Println(experiments.Figure6())
		case "7":
			fmt.Println(experiments.Figure7())
		case "8":
			fmt.Println(experiments.Figure8())
		case "9":
			fmt.Println(experiments.Figure9())
		case "10":
			fmt.Println(experiments.Figure10())
		case "ablation":
			fmt.Println(experiments.AblationZNUMA())
		case "colocation":
			fmt.Println(experiments.AblationCoLocation())
		case "":
		default:
			fmt.Fprintf(os.Stderr, "pondtopo: unknown figure %q\n", f)
			os.Exit(2)
		}
	}
}
