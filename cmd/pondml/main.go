// Command pondml trains and evaluates Pond's prediction models: the
// latency-insensitivity comparison (Figure 17), the untouched-memory
// model against the fixed strawman (Figure 18), the production-style
// rolling evaluation (Figure 19), the combined Eq. (1) frontier
// (Figure 20), and the forest-size ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pond/internal/experiments"
)

func main() {
	figs := flag.String("figures", "17,18,19,20,ablation,audit",
		"comma-separated list of figures to print (17,18,19,20,ablation,audit)")
	folds := flag.Int("folds", 20, "cross-validation folds for Figure 17/20 (paper: 100)")
	scaleFlag := flag.String("scale", "quick", "trace scale: quick, full, or paper")
	flag.Parse()

	scale := parseScale(*scaleFlag)
	for _, f := range strings.Split(*figs, ",") {
		switch strings.TrimSpace(f) {
		case "17":
			fmt.Println(experiments.Figure17(*folds, 3))
		case "18":
			fmt.Println(experiments.Figure18(scale))
		case "19":
			fmt.Println(experiments.Figure19(scale, 7))
		case "20":
			fmt.Println(experiments.Figure20(scale, *folds))
		case "ablation":
			fmt.Println(experiments.AblationForestSize(*folds))
		case "audit":
			fmt.Println(experiments.CounterAudit(8))
		case "":
		default:
			fmt.Fprintf(os.Stderr, "pondml: unknown figure %q\n", f)
			os.Exit(2)
		}
	}
}

func parseScale(s string) experiments.Scale {
	switch s {
	case "quick":
		return experiments.ScaleQuick
	case "paper":
		return experiments.ScalePaper
	default:
		return experiments.ScaleFull
	}
}
