// Command pondml trains and evaluates Pond's prediction models: the
// latency-insensitivity comparison (Figure 17), the untouched-memory
// model against the fixed strawman (Figure 18), the production-style
// rolling evaluation (Figure 19), the combined Eq. (1) frontier
// (Figure 20), and the forest-size ablation.
package main

import (
	"flag"
	"fmt"
	"strings"

	"pond/internal/cliutil"
	"pond/internal/experiments"
)

func main() {
	figs := flag.String("figures", "17,18,19,20,ablation,audit",
		"comma-separated list of figures to print (17,18,19,20,ablation,audit)")
	folds := flag.Int("folds", 20, "cross-validation folds for Figure 17/20 (paper: 100)")
	scaleFlag := flag.String("scale", "quick", "trace scale: tiny, quick, full, or paper")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		cliutil.Fatal("pondml", err)
	}
	if *folds < 1 {
		cliutil.Fatal("pondml", fmt.Errorf("-folds must be >= 1, got %d", *folds))
	}
	// One definition list serves both validation and dispatch, so the
	// two can never drift apart.
	figures := map[string]func() fmt.Stringer{
		"17":       func() fmt.Stringer { return experiments.Figure17(*folds, 3) },
		"18":       func() fmt.Stringer { return experiments.Figure18(scale) },
		"19":       func() fmt.Stringer { return experiments.Figure19(scale, 7) },
		"20":       func() fmt.Stringer { return experiments.Figure20(scale, *folds) },
		"ablation": func() fmt.Stringer { return experiments.AblationForestSize(*folds) },
		"audit":    func() fmt.Stringer { return experiments.CounterAudit(8) },
	}
	// Validate the whole figure list before running anything: a typo in
	// the last entry must not waste the preceding figures' runtime.
	names := strings.Split(*figs, ",")
	for _, f := range names {
		if f = strings.TrimSpace(f); f != "" && figures[f] == nil {
			cliutil.Fatal("pondml", fmt.Errorf("unknown figure %q (want 17, 18, 19, 20, ablation, audit)", f))
		}
	}
	for _, f := range names {
		if f = strings.TrimSpace(f); f != "" {
			fmt.Println(figures[f]())
		}
	}
}
