// Command pondbench prints the workload-sensitivity studies: per-class
// slowdowns under CXL latency (Figure 4), the slowdown CDF (Figure 5),
// zNUMA traffic for the internal workloads (Figure 15), the spill
// sensitivity study (Figure 16), and — through the shared registry — the
// model studies (Figures 17-20).
//
// -workers bounds the parallel engine's pool (results are byte-identical
// for any value); -seed reroots every stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pond/internal/cliutil"
	"pond/internal/experiments"
)

func main() {
	figs := flag.String("figures", "4,5,15,16",
		"comma-separated list of figures to print (4,5,15,16,17,18,19,20)")
	scaleFlag := flag.String("scale", "quick", "trace scale for the model studies: quick, full, paper, or tiny")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS); results are identical for any value")
	seed := flag.Int64("seed", experiments.DefaultSeed, "root seed for every generation and training stream")
	flag.Parse()

	cliutil.MustValidateRun("pondbench", *workers, *seed)

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pondbench: %v\n", err)
		os.Exit(2)
	}
	defs, err := experiments.Lookup(strings.Split(*figs, ","))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pondbench: %v\n", err)
		os.Exit(2)
	}
	opts := []experiments.Option{
		experiments.WithWorkers(*workers),
		experiments.WithSeed(*seed),
	}
	for _, d := range defs {
		fmt.Println(d.Run(scale, opts...))
	}
}
