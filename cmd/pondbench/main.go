// Command pondbench prints the workload-sensitivity studies: per-class
// slowdowns under CXL latency (Figure 4), the slowdown CDF (Figure 5),
// zNUMA traffic for the internal workloads (Figure 15), and the spill
// sensitivity study (Figure 16).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pond/internal/experiments"
)

func main() {
	figs := flag.String("figures", "4,5,15,16",
		"comma-separated list of figures to print (4,5,15,16)")
	flag.Parse()

	for _, f := range strings.Split(*figs, ",") {
		switch strings.TrimSpace(f) {
		case "4":
			fmt.Println(experiments.Figure4())
		case "5":
			fmt.Println(experiments.Figure5())
		case "15":
			fmt.Println(experiments.Figure15())
		case "16":
			fmt.Println(experiments.Figure16())
		case "":
		default:
			fmt.Fprintf(os.Stderr, "pondbench: unknown figure %q\n", f)
			os.Exit(2)
		}
	}
}
