// Command pondreport regenerates the complete evaluation in one run: all
// figures, findings, and ablations, in paper order. It is the one-command
// reproduction entry point; expect a few minutes at -scale=quick and
// substantially longer at -scale=paper.
package main

import (
	"flag"
	"fmt"
	"time"

	"pond/internal/cliutil"
	"pond/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "trace scale: tiny, quick, full, or paper")
	folds := flag.Int("folds", 10, "cross-validation folds (paper: 100)")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		cliutil.Fatal("pondreport", err)
	}
	if *folds < 1 {
		cliutil.Fatal("pondreport", fmt.Errorf("-folds must be >= 1, got %d", *folds))
	}

	fmt.Printf("Pond reproduction report (scale=%s, folds=%d)\n", scale, *folds)
	fmt.Printf("================================================\n\n")

	sections := []struct {
		name string
		run  func() fmt.Stringer
	}{
		{"Figure 2a", func() fmt.Stringer { return experiments.Figure2a(scale) }},
		{"Figure 2b", func() fmt.Stringer { return experiments.Figure2b(scale) }},
		{"Figure 3", func() fmt.Stringer { return experiments.Figure3(scale) }},
		{"Figure 4", func() fmt.Stringer { return experiments.Figure4() }},
		{"Figure 5", func() fmt.Stringer { return experiments.Figure5() }},
		{"Figure 6", func() fmt.Stringer { return experiments.Figure6() }},
		{"Figure 7", func() fmt.Stringer { return experiments.Figure7() }},
		{"Figure 8", func() fmt.Stringer { return experiments.Figure8() }},
		{"Figure 9", func() fmt.Stringer { return experiments.Figure9() }},
		{"Figure 10", func() fmt.Stringer { return experiments.Figure10() }},
		{"Figure 15", func() fmt.Stringer { return experiments.Figure15() }},
		{"Figure 16", func() fmt.Stringer { return experiments.Figure16() }},
		{"Figure 17", func() fmt.Stringer { return experiments.Figure17(*folds, 3) }},
		{"Figure 18", func() fmt.Stringer { return experiments.Figure18(scale) }},
		{"Figure 19", func() fmt.Stringer { return experiments.Figure19(scale, 7) }},
		{"Figure 20", func() fmt.Stringer { return experiments.Figure20(scale, *folds) }},
		{"Figure 21", func() fmt.Stringer { return experiments.Figure21(scale) }},
		{"Finding 10", func() fmt.Stringer { return experiments.Finding10(scale) }},
		{"Counter audit", func() fmt.Stringer { return experiments.CounterAudit(8) }},
		{"Ablation: zNUMA", func() fmt.Stringer { return experiments.AblationZNUMA() }},
		{"Ablation: co-location", func() fmt.Stringer { return experiments.AblationCoLocation() }},
		{"Ablation: async release", func() fmt.Stringer { return experiments.AblationAsyncRelease(scale) }},
		{"Ablation: forest size", func() fmt.Stringer { return experiments.AblationForestSize(*folds) }},
	}
	start := time.Now()
	for _, sec := range sections {
		t0 := time.Now()
		out := sec.run()
		fmt.Println(out)
		fmt.Printf("[%s took %.1fs]\n\n", sec.name, time.Since(t0).Seconds())
	}
	fmt.Printf("report complete in %.1fs\n", time.Since(start).Seconds())
}
