package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// defaults mirrors the flag defaults main registers; each table case
// overrides a handful of fields.
func defaults() flags {
	return flags{
		topologies: "flat",
		arrival:    "poisson:rate=0.05:life=600",
		opts:       baseOpts(),
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flags)
		wantErr string // substring; empty = must pass
	}{
		{"defaults", func(f *flags) {}, ""},
		{"topology-list", func(f *flags) { f.topologies = "flat,sharded,sparse" }, ""},
		{"retrain-cell-scope", func(f *flags) { f.opts.Model.RetrainEverySec = 500 }, ""},
		{"fleet-scope", func(f *flags) {
			f.opts.Model.RetrainEverySec = 500
			f.opts.Model.Scope = "fleet"
			f.opts.Model.CanaryFraction = 0.25
			f.opts.Model.BakeWindowSec = 1000
		}, ""},
		{"fleet-scope-default-knobs", func(f *flags) {
			f.opts.Model.RetrainEverySec = 500
			f.opts.Model.Scope = "fleet"
		}, ""},
		{"elastic", func(f *flags) { f.opts.Capacity.Elastic = true }, ""},
		{"elastic-knobs", func(f *flags) {
			f.opts.Capacity.Elastic = true
			f.opts.Capacity.PlanEverySec = 200
			f.opts.Capacity.TargetQoS = 0.02
		}, ""},
		{"elastic-with-fleet-scope", func(f *flags) {
			f.opts.Capacity.Elastic = true
			f.opts.Model.RetrainEverySec = 500
			f.opts.Model.Scope = "fleet"
		}, ""},

		{"negative-workers", func(f *flags) { f.opts.Engine.Workers = -1 }, "-workers"},
		{"zero-seed", func(f *flags) { f.opts.Engine.Seed = 0 }, "-seed"},
		{"negative-duration", func(f *flags) { f.opts.Cluster.DurationSec = -1 }, "-duration"},
		{"nan-duration", func(f *flags) { f.opts.Cluster.DurationSec = nan() }, "-duration"},
		{"zero-cells", func(f *flags) { f.opts.Cluster.Cells = 0 }, "-cells"},
		{"negative-retrain", func(f *flags) { f.opts.Model.RetrainEverySec = -5 }, "-retrain-every"},
		{"retrain-no-predictions", func(f *flags) {
			f.opts.Model.RetrainEverySec = 500
			f.opts.Model.Disabled = true
		}, "-retrain-every requires predictions"},
		{"models-no-predictions", func(f *flags) {
			f.modelsOut = "m.json"
			f.opts.Model.Disabled = true
		}, "-models requires predictions"},
		{"unknown-scope", func(f *flags) {
			f.opts.Model.RetrainEverySec = 500
			f.opts.Model.Scope = "galaxy"
		}, "-model-scope"},
		{"fleet-scope-without-retrain", func(f *flags) { f.opts.Model.Scope = "fleet" }, "-retrain-every > 0"},
		{"canary-under-cell-scope", func(f *flags) { f.opts.Model.CanaryFraction = 0.5 }, "-canary"},
		{"bake-under-cell-scope", func(f *flags) { f.opts.Model.BakeWindowSec = 100 }, "-bake"},
		{"canary-too-big", func(f *flags) {
			f.opts.Model.RetrainEverySec = 500
			f.opts.Model.Scope = "fleet"
			f.opts.Model.CanaryFraction = 1.5
		}, "-canary"},
		{"canary-negative", func(f *flags) {
			f.opts.Model.RetrainEverySec = 500
			f.opts.Model.Scope = "fleet"
			f.opts.Model.CanaryFraction = -0.5
		}, "-canary"},
		{"canary-nan", func(f *flags) {
			f.opts.Model.RetrainEverySec = 500
			f.opts.Model.Scope = "fleet"
			f.opts.Model.CanaryFraction = nan()
		}, "-canary"},
		{"bake-negative", func(f *flags) {
			f.opts.Model.RetrainEverySec = 500
			f.opts.Model.Scope = "fleet"
			f.opts.Model.BakeWindowSec = -1
		}, "-bake"},
		{"plan-every-without-elastic", func(f *flags) { f.opts.Capacity.PlanEverySec = 200 }, "-plan-every"},
		{"target-qos-without-elastic", func(f *flags) { f.opts.Capacity.TargetQoS = 0.02 }, "-target-qos"},
		{"plan-every-negative", func(f *flags) {
			f.opts.Capacity.Elastic = true
			f.opts.Capacity.PlanEverySec = -1
		}, "-plan-every"},
		{"plan-every-nan", func(f *flags) {
			f.opts.Capacity.Elastic = true
			f.opts.Capacity.PlanEverySec = nan()
		}, "-plan-every"},
		{"plan-every-beyond-horizon", func(f *flags) {
			f.opts.Capacity.Elastic = true
			f.opts.Capacity.PlanEverySec = 1000
		}, "-plan-every"},
		{"target-qos-too-big", func(f *flags) {
			f.opts.Capacity.Elastic = true
			f.opts.Capacity.TargetQoS = 1
		}, "-target-qos"},
		{"target-qos-nan", func(f *flags) {
			f.opts.Capacity.Elastic = true
			f.opts.Capacity.TargetQoS = nan()
		}, "-target-qos"},
		{"margin-too-big", func(f *flags) { f.opts.Model.PromoteMargin = 1 }, "-promote-margin"},
		{"margin-nan", func(f *flags) { f.opts.Model.PromoteMargin = nan() }, "-promote-margin"},
		{"negative-holdout", func(f *flags) { f.opts.Model.HoldoutWindow = -1 }, "-holdout"},
		{"negative-min-rows", func(f *flags) { f.opts.Model.MinTrainRows = -1 }, "-min-rows"},
		{"bad-topology", func(f *flags) { f.topologies = "moebius" }, "unknown topology"},
		{"empty-topology-entry", func(f *flags) { f.topologies = "flat," }, "unknown topology"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := defaults()
			tc.mutate(&f)
			names, err := validate(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(names) == 0 {
					t.Fatal("no topologies returned")
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error mentioning %q, got none", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestMain lets the test binary stand in for the pondfleet binary, so
// the exit-code tests below run the real main() without a separate
// build step.
func TestMain(m *testing.M) {
	if os.Getenv("PONDFLEET_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// TestBadFlagsExitCode2 drives the real binary end to end: flag
// validation failures must exit 2 (the conventional flag-error code)
// and point at usage, never start a run or silently coerce.
func TestBadFlagsExitCode2(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round-trips are full-tier")
	}
	cases := [][]string{
		{"-workers", "-1"},
		{"-seed", "0"},
		{"-duration", "-10"},
		{"-cells", "0"},
		{"-retrain-every", "-1"},
		{"-model-scope", "galaxy", "-retrain-every", "100"},
		{"-model-scope", "fleet"},
		{"-canary", "0.5"},
		{"-model-scope", "fleet", "-retrain-every", "100", "-canary", "2"},
		{"-model-scope", "fleet", "-retrain-every", "100", "-bake", "-5"},
		{"-promote-margin", "1.5"},
		{"-holdout", "-1"},
		{"-min-rows", "-1"},
		{"-topology", "flat,,sparse"},
		{"-inject", "meteor@t=1"},
		{"-inject", "drift@t=1:cells=3-1"},
		{"-arrival", "uniform"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			cmd := exec.Command(os.Args[0], args...)
			cmd.Env = append(os.Environ(), "PONDFLEET_RUN_MAIN=1")
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected a non-zero exit, got err=%v output:\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("exit code = %d, want 2; output:\n%s", code, out)
			}
			if !strings.Contains(string(out), "usage") && !strings.Contains(string(out), "Usage") {
				t.Fatalf("output does not point at usage:\n%s", out)
			}
		})
	}
}

// TestGoodFlagsRun exercises one real (tiny) run through main,
// including the fleet-scoped rollout output path.
func TestGoodFlagsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round-trips are full-tier")
	}
	cmd := exec.Command(os.Args[0],
		"-duration", "300", "-cells", "2", "-hosts", "4", "-pool", "64",
		"-arrival", "poisson:rate=0.1:life=150",
		"-retrain-every", "100", "-model-scope", "fleet", "-min-rows", "8")
	cmd.Env = append(os.Environ(), "PONDFLEET_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}
	for _, want := range []string{"fleet-mlops: scope=fleet", "event-log:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
