package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// shaRE pulls the determinism witness out of the printed summary.
var shaRE = regexp.MustCompile(`sha256=([0-9a-f]{64})`)

// checkpointArgs is the shared workload for the kill-resume matrix:
// long enough (in wall time) that a SIGTERM a few hundred milliseconds
// in lands between Advance slices, small enough to keep the matrix
// under test-suite budget.
func checkpointArgs(workers string) []string {
	return []string{
		"-duration", "120000", "-cells", "3", "-hosts", "4", "-pool", "64",
		"-arrival", "poisson:rate=0.2:life=600",
		"-workers", workers,
	}
}

// TestCheckpointKillResumeMatrix is the end-to-end equivalence matrix
// for the snapshot file: a run SIGTERMed at several mid-run points and
// resumed across fresh processes must report the exact event count and
// log hash of the run that was never interrupted, for both serial and
// parallel engines. Each leg execs the real binary, so the chain also
// proves the snapshot survives process death, not just an in-memory
// round trip.
func TestCheckpointKillResumeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round-trips are full-tier")
	}
	for _, workers := range []string{"1", "4"} {
		workers := workers
		t.Run("workers="+workers, func(t *testing.T) {
			t.Parallel()
			want := runToCompletion(t, checkpointArgs(workers))

			ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
			kills := []time.Duration{250 * time.Millisecond, 600 * time.Millisecond}
			interrupted := 0
			resumed := false
			var final string
			for leg := 0; ; leg++ {
				args := append(checkpointArgs(workers), "-checkpoint", ckpt)
				if interrupted > 0 {
					args = append(args, "-resume")
				}
				var kill time.Duration
				if interrupted < len(kills) {
					kill = kills[interrupted]
				}
				out, ok := runLeg(t, args, kill)
				switch {
				case strings.Contains(out, "interrupted at t="):
					interrupted++
				case ok && strings.Contains(out, "event-log:"):
					if strings.Contains(out, "resumed from") {
						resumed = true
					}
					final = out
				case !ok && !strings.Contains(out, "interrupted"):
					// SIGTERM landed before the handler was installed, so
					// the default action killed the process before a
					// snapshot was (re)written. The previous snapshot on
					// disk is untouched; rerunning the same leg is
					// idempotent.
					t.Logf("leg %d killed pre-handler; retrying", leg)
				default:
					t.Fatalf("leg %d: unexpected outcome (ok=%v):\n%s", leg, ok, out)
				}
				if final != "" {
					break
				}
				if leg > 10 {
					t.Fatalf("no completed run after %d legs", leg)
				}
			}

			if interrupted == 0 {
				t.Fatalf("run completed before any SIGTERM landed; matrix exercised nothing")
			}
			if !resumed {
				t.Fatalf("final leg did not resume from a snapshot")
			}
			got := summaryWitness(t, final)
			if got != want {
				t.Errorf("resumed run witness %q != uninterrupted %q (after %d kills)", got, want, interrupted)
			}
			t.Logf("workers=%s: %d mid-run kills, witness %s", workers, interrupted, got)
		})
	}
}

// TestCheckpointRestoreSkipsElapsedTime pins the O(1)-restore claim at
// the CLI layer: resuming a run SIGTERMed deep into a long horizon must
// print a resume time well past zero — the restored process starts at
// the snapshot's clock instead of replaying the elapsed prefix.
func TestCheckpointRestoreSkipsElapsedTime(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round-trips are full-tier")
	}
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	args := append(checkpointArgs("4"), "-checkpoint", ckpt)
	var killed string
	for attempt := 0; ; attempt++ {
		out, ok := runLeg(t, args, 500*time.Millisecond)
		if strings.Contains(out, "interrupted at t=") {
			killed = out
			break
		}
		if ok {
			t.Skip("run completed before SIGTERM; timing-dependent, nothing to assert")
		}
		if attempt > 5 {
			t.Fatalf("no mid-run kill after %d attempts:\n%s", attempt, out)
		}
	}
	tAtKill := parseTimeAfter(t, killed, "interrupted at t=")
	if tAtKill <= 0 {
		t.Fatalf("kill landed at t=%g; expected mid-run", tAtKill)
	}

	out, ok := runLeg(t, append(args, "-resume"), 0)
	if !ok {
		t.Fatalf("resume failed:\n%s", out)
	}
	tAtResume := parseTimeAfter(t, out, "at t=")
	if tAtResume != tAtKill {
		t.Errorf("resumed at t=%g, snapshot taken at t=%g; restore must not rewind or replay", tAtResume, tAtKill)
	}
}

// runToCompletion execs the binary with args and returns its summary
// witness (event count + log hash).
func runToCompletion(t *testing.T, args []string) string {
	t.Helper()
	out, ok := runLeg(t, args, 0)
	if !ok {
		t.Fatalf("reference run failed:\n%s", out)
	}
	return summaryWitness(t, out)
}

// runLeg execs the test binary as pondfleet. A non-zero kill delay
// sends SIGTERM that long after start. Returns combined output and
// whether the process exited 0.
func runLeg(t *testing.T, args []string, kill time.Duration) (string, bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PONDFLEET_RUN_MAIN=1")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %v: %v", args, err)
	}
	if kill > 0 {
		timer := time.AfterFunc(kill, func() { cmd.Process.Signal(syscall.SIGTERM) })
		defer timer.Stop()
	}
	err := cmd.Wait()
	return buf.String(), err == nil
}

// summaryWitness extracts "N events, sha256=..." from a completed run's
// output, failing the test when the summary is missing.
func summaryWitness(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "event-log:")
	if i < 0 {
		t.Fatalf("output has no event-log summary:\n%s", out)
	}
	line := out[i:]
	if j := strings.IndexByte(line, '\n'); j >= 0 {
		line = line[:j]
	}
	if !shaRE.MatchString(line) {
		t.Fatalf("summary line has no sha256: %q", line)
	}
	return strings.TrimSpace(line)
}

// parseTimeAfter finds marker in out and parses the t=<seconds> value
// that follows it.
func parseTimeAfter(t *testing.T, out, marker string) float64 {
	t.Helper()
	i := strings.Index(out, marker)
	if i < 0 {
		t.Fatalf("output missing %q:\n%s", marker, out)
	}
	rest := out[i+len(marker):]
	var v float64
	if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
		t.Fatalf("parsing time after %q near %q: %v", marker, rest, err)
	}
	return v
}
