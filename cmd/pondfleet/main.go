// Command pondfleet runs the online, event-driven fleet simulation: VMs
// arrive and depart continuously, every admission flows through the
// prediction/QoS control plane, and operational scenarios — EMC failures
// with topology-bounded blast radius, host drains, load surges — are
// injected mid-run.
//
//	pondfleet -topology sparse -inject emc-fail@t=500
//	pondfleet -topology flat,sharded,sparse -arrival trace -duration 3600
//	pondfleet -arrival poisson:rate=0.2:life=300 -inject surge@t=300:dur=200:x=3
//
// -topology accepts a comma-separated list; with more than one entry the
// tool prints a per-topology comparison of stranding, utilization, and
// blast radius. Cells fan out over the parallel engine: -workers bounds
// the pool and the event log (and its printed hash) is byte-identical
// for any value.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"pond"
	"pond/internal/cliutil"
)

func main() {
	topologies := flag.String("topology", "flat", "comma-separated host-to-EMC topologies: flat, sharded, sparse")
	arrival := flag.String("arrival", "poisson:rate=0.05:life=600", `arrival model: "poisson[:rate=R][:life=L]" or "trace"`)
	inject := flag.String("inject", "", `scenario injections, e.g. "emc-fail@t=500,host-drain@t=800:host=2,surge@t=300:dur=200:x=3,drift@t=2000:mag=0.6"`)
	duration := flag.Float64("duration", 1000, "simulated horizon per cell (seconds)")
	hosts := flag.Int("hosts", 8, "hosts per cell")
	emcs := flag.Int("emcs", 4, "EMCs per cell")
	poolGB := flag.Int("pool", 512, "pool capacity per cell (GB)")
	degree := flag.Int("degree", 2, "per-host EMC connections under the sparse topology")
	cells := flag.Int("cells", 4, "independent pool groups (engine shards)")
	noPredict := flag.Bool("no-predictions", false, "disable the ML pipeline (all-local baseline)")
	retrainEvery := flag.Float64("retrain-every", 0, "online model retrain cadence in seconds (0 = frozen models)")
	promoteMargin := flag.Float64("promote-margin", 0, "fractional rolling-loss improvement required to promote a challenger (0 = default 5%)")
	holdout := flag.Int("holdout", 0, "rolling holdout window in completed VMs (0 = default)")
	minRows := flag.Int("min-rows", 0, "minimum completed VMs before a challenger trains (0 = default)")
	modelsOut := flag.String("models", "", "write the versioned model dump (JSON) to this file")
	printLog := flag.Bool("log", false, "print the full event log")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS); results are identical for any value")
	seed := flag.Int64("seed", 1, "root seed for every cell stream")
	flag.Parse()

	cliutil.MustValidateRun("pondfleet", *workers, *seed)
	if *duration <= 0 {
		cliutil.Fatal("pondfleet", fmt.Errorf("-duration must be positive, got %g", *duration))
	}
	if *cells <= 0 {
		cliutil.Fatal("pondfleet", fmt.Errorf("-cells must be positive, got %d", *cells))
	}
	if *retrainEvery < 0 || math.IsNaN(*retrainEvery) || math.IsInf(*retrainEvery, 0) {
		cliutil.Fatal("pondfleet", fmt.Errorf("-retrain-every must be a finite number >= 0, got %g", *retrainEvery))
	}
	if *retrainEvery > 0 && *noPredict {
		cliutil.Fatal("pondfleet", fmt.Errorf("-retrain-every requires predictions (drop -no-predictions)"))
	}
	if *modelsOut != "" && *noPredict {
		cliutil.Fatal("pondfleet", fmt.Errorf("-models requires predictions (drop -no-predictions)"))
	}
	if !(*promoteMargin >= 0 && *promoteMargin < 1) { // rejects NaN too
		cliutil.Fatal("pondfleet", fmt.Errorf("-promote-margin must be in [0, 1), got %g", *promoteMargin))
	}
	if *holdout < 0 || *minRows < 0 {
		cliutil.Fatal("pondfleet", fmt.Errorf("-holdout and -min-rows must be >= 0"))
	}

	names := strings.Split(*topologies, ",")
	reports := make([]*pond.FleetReport, 0, len(names))
	for _, name := range names {
		rep, err := pond.RunFleet(context.Background(), pond.FleetOpts{
			Topology:           strings.TrimSpace(name),
			PodDegree:          *degree,
			Hosts:              *hosts,
			EMCs:               *emcs,
			PoolGB:             *poolGB,
			Cells:              *cells,
			DurationSec:        *duration,
			Arrival:            *arrival,
			Inject:             *inject,
			DisablePredictions: *noPredict,
			RetrainEverySec:    *retrainEvery,
			PromoteMargin:      *promoteMargin,
			HoldoutWindow:      *holdout,
			MinTrainRows:       *minRows,
			CaptureModels:      *modelsOut != "",
			Workers:            *workers,
			Seed:               *seed,
		})
		if err != nil {
			cliutil.Fatal("pondfleet", err)
		}
		reports = append(reports, rep)
		fmt.Println(rep.Summary)
		if *retrainEvery > 0 && len(rep.PromotionHistory) > 0 {
			fmt.Println("model lifecycle:")
			for _, line := range rep.PromotionHistory {
				fmt.Printf("  %s\n", line)
			}
		}
		if *printLog {
			fmt.Print(rep.EventLog)
		}
		fmt.Println()
	}

	if *modelsOut != "" {
		if err := writeModels(*modelsOut, names, reports); err != nil {
			cliutil.Fatal("pondfleet", err)
		}
		fmt.Printf("wrote versioned model dump to %s\n", *modelsOut)
	}

	if len(reports) > 1 {
		fmt.Println("per-topology comparison:")
		printComparison(reports)
	}
}

func printComparison(reports []*pond.FleetReport) {
	fmt.Printf("  %-10s %9s %9s %12s %12s %12s\n",
		"topology", "placed", "rejected", "core-util", "stranded-GB", "blast-vms")
	for _, r := range reports {
		fmt.Printf("  %-10s %9d %9d %11.1f%% %12.1f %12d\n",
			r.Topology, r.Placed, r.Rejected, 100*r.AvgCoreUtil, r.AvgStrandedGB, r.BlastVMs)
	}
}

// modelDump is the -models file schema: per-topology, per-cell versioned
// model snapshots.
type modelDump struct {
	Topology string            `json:"topology"`
	Cells    []json.RawMessage `json:"cells"`
}

func writeModels(path string, names []string, reports []*pond.FleetReport) error {
	dumps := make([]modelDump, 0, len(reports))
	for i, r := range reports {
		dumps = append(dumps, modelDump{Topology: strings.TrimSpace(names[i]), Cells: r.ModelsJSON})
	}
	data, err := json.MarshalIndent(dumps, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
