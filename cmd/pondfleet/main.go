// Command pondfleet runs the online, event-driven fleet simulation: VMs
// arrive and depart continuously, every admission flows through the
// prediction/QoS control plane, and operational scenarios — EMC failures
// with topology-bounded blast radius, host drains, load surges, regional
// drift — are injected mid-run.
//
//	pondfleet -topology sparse -inject emc-fail@t=500
//	pondfleet -topology flat,sharded,sparse -arrival trace -duration 3600
//	pondfleet -arrival poisson:rate=0.2:life=300 -inject surge@t=300:dur=200:x=3
//	pondfleet -retrain-every 1000 -model-scope fleet -canary 0.25 -bake 2000 \
//	    -inject drift@t=8000:cells=2-3:mag=0.8
//	pondfleet -elastic -plan-every 500 -target-qos 0.01 \
//	    -inject resize@t=300:emc=1:slices=-16
//
// -topology accepts a comma-separated list; with more than one entry the
// tool prints a per-topology comparison of stranding, utilization, and
// blast radius. -model-scope fleet pools telemetry across cells into the
// §5 central pipeline and deploys each retrained model through a staged
// canary rollout. -elastic turns on the online capacity controller: at
// every -plan-every barrier each cell's pool is re-planned from observed
// demand and grown or shrunk through the Pool Manager's elastic APIs
// (cmd/pondplan runs the offline savings waterfall over the same
// telemetry). Cells fan out over the parallel engine: -workers bounds
// the pool and the event log (and its printed hash) is byte-identical
// for any value.
//
// The flags map one-to-one onto pond.FleetOpts' grouped sub-configs —
// cluster sizing, model lifecycle, capacity planning, engine — and are
// registered per group through internal/cliutil, with defaults drawn
// from pond.Defaults(). pondserve accepts the same configuration as a
// JSON body.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pond"
	"pond/internal/cliutil"
	"pond/internal/fleet"
)

// flags carries every pondfleet flag value so validation is testable
// without exec'ing the binary. The grouped opts hold everything the
// shared cliutil registrations own; the spec-string and output flags
// are pondfleet-local.
type flags struct {
	topologies string
	arrival    string
	inject     string
	modelsOut  string
	metricsOut string
	printLog   bool
	checkpoint string
	resume     bool
	opts       pond.FleetOpts
}

// baseOpts seeds the grouped defaults the flag registrations use.
// Arrivals are zeroed because the -arrival spec string carries the
// arrival model (the shim maps it; leaving both set would trip the
// conflict check), and the topology comes from the -topology list.
func baseOpts() pond.FleetOpts {
	o := pond.Defaults()
	o.Arrivals = pond.ArrivalOpts{}
	o.Cluster.Topology = ""
	return o
}

// validate rejects every flag combination the fleet layer would only
// reject after parsing — or, worse, silently coerce — with one readable
// error. It returns the parsed topology list on success.
func validate(f flags) ([]string, error) {
	if err := cliutil.ValidateWorkers(f.opts.Engine.Workers); err != nil {
		return nil, err
	}
	if err := cliutil.ValidateSeed(f.opts.Engine.Seed); err != nil {
		return nil, err
	}
	cl, m, cp := f.opts.Cluster, f.opts.Model, f.opts.Capacity
	if cl.DurationSec <= 0 || math.IsNaN(cl.DurationSec) || math.IsInf(cl.DurationSec, 0) {
		return nil, fmt.Errorf("-duration must be a positive number, got %g", cl.DurationSec)
	}
	if cl.Cells <= 0 {
		return nil, fmt.Errorf("-cells must be positive, got %d", cl.Cells)
	}
	if m.RetrainEverySec < 0 || math.IsNaN(m.RetrainEverySec) || math.IsInf(m.RetrainEverySec, 0) {
		return nil, fmt.Errorf("-retrain-every must be a finite number >= 0, got %g", m.RetrainEverySec)
	}
	if m.RetrainEverySec > 0 && m.Disabled {
		return nil, fmt.Errorf("-retrain-every requires predictions (drop -no-predictions)")
	}
	if f.modelsOut != "" && m.Disabled {
		return nil, fmt.Errorf("-models requires predictions (drop -no-predictions)")
	}
	switch m.Scope {
	case "", fleet.ScopeCell:
		if m.CanaryFraction != 0 || m.BakeWindowSec != 0 {
			return nil, fmt.Errorf("-canary and -bake require -model-scope %s", fleet.ScopeFleet)
		}
	case fleet.ScopeFleet:
		if m.RetrainEverySec <= 0 {
			return nil, fmt.Errorf("-model-scope %s requires -retrain-every > 0", fleet.ScopeFleet)
		}
		if m.CanaryFraction != 0 && !(m.CanaryFraction > 0 && m.CanaryFraction <= 1) { // rejects NaN too
			return nil, fmt.Errorf("-canary must be in (0, 1], got %g", m.CanaryFraction)
		}
		if m.BakeWindowSec < 0 || math.IsNaN(m.BakeWindowSec) || math.IsInf(m.BakeWindowSec, 0) {
			return nil, fmt.Errorf("-bake must be a finite number >= 0, got %g", m.BakeWindowSec)
		}
	default:
		return nil, fmt.Errorf("-model-scope must be %s or %s, got %q", fleet.ScopeCell, fleet.ScopeFleet, m.Scope)
	}
	if !(m.PromoteMargin >= 0 && m.PromoteMargin < 1) { // rejects NaN too
		return nil, fmt.Errorf("-promote-margin must be in [0, 1), got %g", m.PromoteMargin)
	}
	if !cp.Elastic && (cp.PlanEverySec != 0 || cp.TargetQoS != 0) {
		return nil, fmt.Errorf("-plan-every and -target-qos require -elastic")
	}
	if cp.Elastic {
		if cp.PlanEverySec < 0 || math.IsNaN(cp.PlanEverySec) || math.IsInf(cp.PlanEverySec, 0) {
			return nil, fmt.Errorf("-plan-every must be a finite number >= 0, got %g", cp.PlanEverySec)
		}
		if cp.PlanEverySec >= cl.DurationSec {
			return nil, fmt.Errorf("-plan-every %g never fires within the %g second horizon", cp.PlanEverySec, cl.DurationSec)
		}
		if cp.TargetQoS != 0 && !(cp.TargetQoS > 0 && cp.TargetQoS < 1) { // rejects NaN too
			return nil, fmt.Errorf("-target-qos must be in (0, 1), got %g", cp.TargetQoS)
		}
	}
	if m.HoldoutWindow < 0 || m.MinTrainRows < 0 {
		return nil, fmt.Errorf("-holdout and -min-rows must be >= 0")
	}
	every := f.opts.Engine.MetricsEverySec
	if every < 0 || math.IsNaN(every) || math.IsInf(every, 0) {
		return nil, fmt.Errorf("-metrics-every must be a finite number >= 0, got %g", every)
	}
	if f.metricsOut != "" && every <= 0 {
		return nil, fmt.Errorf("-metrics requires -metrics-every > 0 to sample anything")
	}
	names, err := fleet.ParseTopologies(f.topologies)
	if err != nil {
		return nil, err
	}
	if f.resume && f.checkpoint == "" {
		return nil, fmt.Errorf("-resume requires -checkpoint <path>")
	}
	if f.checkpoint != "" && len(names) > 1 {
		return nil, fmt.Errorf("-checkpoint runs a single topology, got %d", len(names))
	}
	if f.metricsOut != "" && len(names) > 1 {
		return nil, fmt.Errorf("-metrics streams a single topology, got %d", len(names))
	}
	return names, nil
}

func main() {
	f := flags{opts: baseOpts()}
	d := pond.Defaults()
	flag.StringVar(&f.topologies, "topology", d.Cluster.Topology, "comma-separated host-to-EMC topologies: flat, sharded, sparse")
	flag.StringVar(&f.arrival, "arrival", d.Arrivals.Spec(), `arrival model: "poisson[:rate=R][:life=L]" or "trace"`)
	flag.StringVar(&f.inject, "inject", "", `scenario injections, e.g. "emc-fail@t=500,host-drain@t=800:host=2,surge@t=300:dur=200:x=3,drift@t=2000:cells=2-3:mag=0.6"`)
	flag.StringVar(&f.modelsOut, "models", "", "write the versioned model dump (JSON) to this file")
	flag.StringVar(&f.metricsOut, "metrics", "", "stream the sim-time metrics series to this NDJSON file as the run advances (requires -metrics-every; single topology)")
	flag.BoolVar(&f.printLog, "log", false, "print the full event log")
	flag.StringVar(&f.checkpoint, "checkpoint", "", "snapshot file: SIGTERM/SIGINT pauses the run at a safe point and writes its full state here (single topology only)")
	flag.BoolVar(&f.resume, "resume", false, "resume from the -checkpoint snapshot instead of starting at t=0; the run configuration comes from the snapshot")
	cliutil.RegisterClusterFlags(flag.CommandLine, &f.opts.Cluster)
	cliutil.RegisterModelFlags(flag.CommandLine, &f.opts.Model)
	cliutil.RegisterCapacityFlags(flag.CommandLine, &f.opts.Capacity)
	cliutil.RegisterEngineFlags(flag.CommandLine, &f.opts.Engine)
	flag.Parse()

	names, err := validate(f)
	if err != nil {
		cliutil.Fatal("pondfleet", err)
	}

	reports := make([]*pond.FleetReport, 0, len(names))
	for _, name := range names {
		o := f.opts
		o.Cluster.Topology = name
		o.Arrival = f.arrival
		o.Inject = f.inject
		o.Model.Capture = f.modelsOut != ""
		var rep *pond.FleetReport
		var err error
		if f.checkpoint != "" {
			rep, err = runCheckpointable(context.Background(), o, f.checkpoint, f.resume, f.metricsOut)
			if err == nil && rep == nil {
				// A signal paused the run and its snapshot is on disk.
				return
			}
		} else if f.metricsOut != "" {
			rep, err = runStreamingMetrics(context.Background(), o, f.metricsOut)
		} else {
			rep, err = pond.RunFleet(context.Background(), o)
		}
		if err != nil {
			cliutil.Fatal("pondfleet", err)
		}
		reports = append(reports, rep)
		fmt.Println(rep.Summary)
		if f.opts.Model.RetrainEverySec > 0 && len(rep.PromotionHistory) > 0 {
			fmt.Println("model lifecycle:")
			for _, line := range rep.PromotionHistory {
				fmt.Printf("  %s\n", line)
			}
		}
		if f.opts.Model.RetrainEverySec > 0 && len(rep.RolloutHistory) > 0 {
			fmt.Println("staged rollout:")
			for _, line := range rep.RolloutHistory {
				fmt.Printf("  %s\n", line)
			}
		}
		if f.opts.Capacity.Elastic && len(rep.PlanHistory) > 0 {
			fmt.Println("capacity plans:")
			for _, line := range rep.PlanHistory {
				fmt.Printf("  %s\n", line)
			}
		}
		if f.printLog {
			fmt.Print(rep.EventLog)
		}
		fmt.Println()
	}

	if f.modelsOut != "" {
		if err := writeModels(f.modelsOut, names, reports); err != nil {
			cliutil.Fatal("pondfleet", err)
		}
		fmt.Printf("wrote versioned model dump to %s\n", f.modelsOut)
	}

	if len(reports) > 1 {
		fmt.Println("per-topology comparison:")
		printComparison(reports)
	}
}

// metricsWriter streams drained sim-time series rows to an NDJSON
// file, one pond.MetricsRow object per line. Rows are observations
// only, so streaming them never changes the run's event log or report.
type metricsWriter struct {
	f   *os.File
	enc *json.Encoder
}

// openMetricsWriter opens the -metrics output. A resumed run appends —
// its earlier rows are already on disk and the snapshot carries only
// the not-yet-drained tail — while a fresh run truncates.
func openMetricsWriter(path string, resume bool) (*metricsWriter, error) {
	mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if resume {
		mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, err
	}
	return &metricsWriter{f: f, enc: json.NewEncoder(f)}, nil
}

func (w *metricsWriter) writeRows(rows []pond.MetricsRow) error {
	if w == nil {
		return nil
	}
	for _, row := range rows {
		if err := w.enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

func (w *metricsWriter) Close() error {
	if w == nil {
		return nil
	}
	return w.f.Close()
}

// runStreamingMetrics drives one run incrementally, draining the
// sampled series to the -metrics file after every slice so the NDJSON
// output follows the simulation rather than appearing at the end.
func runStreamingMetrics(ctx context.Context, o pond.FleetOpts, metricsPath string) (*pond.FleetReport, error) {
	fr, err := pond.StartFleet(ctx, o)
	if err != nil {
		return nil, err
	}
	mw, err := openMetricsWriter(metricsPath, false)
	if err != nil {
		return nil, err
	}
	horizon := fr.Progress().DurationSec
	slice := horizon / 64
	for !fr.Done() {
		if err := fr.Advance(ctx, fr.Now()+slice); err != nil {
			mw.Close()
			return nil, err
		}
		if err := mw.writeRows(fr.DrainMetrics()); err != nil {
			mw.Close()
			return nil, err
		}
	}
	rep, err := fr.Finish(ctx)
	if err != nil {
		mw.Close()
		return nil, err
	}
	if err := mw.writeRows(fr.DrainMetrics()); err != nil {
		mw.Close()
		return nil, err
	}
	if err := mw.Close(); err != nil {
		return nil, err
	}
	fmt.Printf("streamed metrics to %s\n", metricsPath)
	return rep, nil
}

// runCheckpointable drives one run incrementally so SIGTERM/SIGINT can
// pause it at a safe point and persist its full state. It returns
// (nil, nil) when a signal stopped the run and the snapshot was
// written; resuming later continues from that point, and the final
// event log and report hash are byte-identical to an uninterrupted run.
// With metricsPath set the sampled series streams to NDJSON alongside;
// rows not yet drained when a signal lands ride inside the snapshot and
// are appended after -resume.
func runCheckpointable(ctx context.Context, o pond.FleetOpts, path string, resume bool, metricsPath string) (*pond.FleetReport, error) {
	var fr *pond.FleetRun
	if resume {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading snapshot: %w", err)
		}
		var snap pond.FleetSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("corrupt snapshot %s: %w", path, err)
		}
		fr, err = pond.RestoreFleet(ctx, &snap)
		if err != nil {
			return nil, err
		}
		fmt.Printf("resumed from %s at t=%.0fs\n", path, fr.Now())
	} else {
		var err error
		fr, err = pond.StartFleet(ctx, o)
		if err != nil {
			return nil, err
		}
	}

	var mw *metricsWriter
	if metricsPath != "" {
		var err error
		mw, err = openMetricsWriter(metricsPath, resume)
		if err != nil {
			return nil, err
		}
		defer mw.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	horizon := fr.Progress().DurationSec
	slice := horizon / 64
	for !fr.Done() {
		select {
		case <-sig:
			snap, err := fr.Snapshot()
			if err != nil {
				return nil, err
			}
			data, err := json.Marshal(snap)
			if err != nil {
				return nil, err
			}
			tmp := path + ".tmp"
			if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
				return nil, err
			}
			if err := os.Rename(tmp, path); err != nil {
				return nil, err
			}
			fmt.Printf("interrupted at t=%.0fs; snapshot written to %s (resume with -resume -checkpoint %s)\n",
				fr.Now(), path, path)
			return nil, nil
		default:
		}
		if err := fr.Advance(ctx, fr.Now()+slice); err != nil {
			return nil, err
		}
		if err := mw.writeRows(fr.DrainMetrics()); err != nil {
			return nil, err
		}
	}
	rep, err := fr.Finish(ctx)
	if err != nil {
		return nil, err
	}
	if err := mw.writeRows(fr.DrainMetrics()); err != nil {
		return nil, err
	}
	return rep, nil
}

func printComparison(reports []*pond.FleetReport) {
	fmt.Printf("  %-10s %9s %9s %12s %12s %12s\n",
		"topology", "placed", "rejected", "core-util", "stranded-GB", "blast-vms")
	for _, r := range reports {
		fmt.Printf("  %-10s %9d %9d %11.1f%% %12.1f %12d\n",
			r.Topology, r.Placed, r.Rejected, 100*r.AvgCoreUtil, r.AvgStrandedGB, r.BlastVMs)
	}
}

// modelDump is the -models file schema: per-topology versioned model
// snapshots (per cell under cell scope, the release train under fleet
// scope).
type modelDump struct {
	Topology string            `json:"topology"`
	Cells    []json.RawMessage `json:"cells"`
}

func writeModels(path string, names []string, reports []*pond.FleetReport) error {
	dumps := make([]modelDump, 0, len(reports))
	for i, r := range reports {
		dumps = append(dumps, modelDump{Topology: strings.TrimSpace(names[i]), Cells: r.ModelsJSON})
	}
	data, err := json.MarshalIndent(dumps, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
