// Command pondfleet runs the online, event-driven fleet simulation: VMs
// arrive and depart continuously, every admission flows through the
// prediction/QoS control plane, and operational scenarios — EMC failures
// with topology-bounded blast radius, host drains, load surges, regional
// drift — are injected mid-run.
//
//	pondfleet -topology sparse -inject emc-fail@t=500
//	pondfleet -topology flat,sharded,sparse -arrival trace -duration 3600
//	pondfleet -arrival poisson:rate=0.2:life=300 -inject surge@t=300:dur=200:x=3
//	pondfleet -retrain-every 1000 -model-scope fleet -canary 0.25 -bake 2000 \
//	    -inject drift@t=8000:cells=2-3:mag=0.8
//	pondfleet -elastic -plan-every 500 -target-qos 0.01 \
//	    -inject resize@t=300:emc=1:slices=-16
//
// -topology accepts a comma-separated list; with more than one entry the
// tool prints a per-topology comparison of stranding, utilization, and
// blast radius. -model-scope fleet pools telemetry across cells into the
// §5 central pipeline and deploys each retrained model through a staged
// canary rollout. -elastic turns on the online capacity controller: at
// every -plan-every barrier each cell's pool is re-planned from observed
// demand and grown or shrunk through the Pool Manager's elastic APIs
// (cmd/pondplan runs the offline savings waterfall over the same
// telemetry). Cells fan out over the parallel engine: -workers bounds
// the pool and the event log (and its printed hash) is byte-identical
// for any value.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"pond"
	"pond/internal/cliutil"
	"pond/internal/fleet"
)

// flags carries every pondfleet flag value so validation is testable
// without exec'ing the binary.
type flags struct {
	topologies    string
	arrival       string
	inject        string
	duration      float64
	hosts         int
	emcs          int
	poolGB        int
	degree        int
	cells         int
	noPredict     bool
	retrainEvery  float64
	modelScope    string
	canary        float64
	bake          float64
	promoteMargin float64
	holdout       int
	minRows       int
	modelsOut     string
	elastic       bool
	planEvery     float64
	targetQoS     float64
	printLog      bool
	workers       int
	seed          int64
}

// validate rejects every flag combination the fleet layer would only
// reject after parsing — or, worse, silently coerce — with one readable
// error. It returns the parsed topology list on success.
func validate(f flags) ([]string, error) {
	if err := cliutil.ValidateWorkers(f.workers); err != nil {
		return nil, err
	}
	if err := cliutil.ValidateSeed(f.seed); err != nil {
		return nil, err
	}
	if f.duration <= 0 || math.IsNaN(f.duration) || math.IsInf(f.duration, 0) {
		return nil, fmt.Errorf("-duration must be a positive number, got %g", f.duration)
	}
	if f.cells <= 0 {
		return nil, fmt.Errorf("-cells must be positive, got %d", f.cells)
	}
	if f.retrainEvery < 0 || math.IsNaN(f.retrainEvery) || math.IsInf(f.retrainEvery, 0) {
		return nil, fmt.Errorf("-retrain-every must be a finite number >= 0, got %g", f.retrainEvery)
	}
	if f.retrainEvery > 0 && f.noPredict {
		return nil, fmt.Errorf("-retrain-every requires predictions (drop -no-predictions)")
	}
	if f.modelsOut != "" && f.noPredict {
		return nil, fmt.Errorf("-models requires predictions (drop -no-predictions)")
	}
	switch f.modelScope {
	case "", fleet.ScopeCell:
		if f.canary != 0 || f.bake != 0 {
			return nil, fmt.Errorf("-canary and -bake require -model-scope %s", fleet.ScopeFleet)
		}
	case fleet.ScopeFleet:
		if f.retrainEvery <= 0 {
			return nil, fmt.Errorf("-model-scope %s requires -retrain-every > 0", fleet.ScopeFleet)
		}
		if f.canary != 0 && !(f.canary > 0 && f.canary <= 1) { // rejects NaN too
			return nil, fmt.Errorf("-canary must be in (0, 1], got %g", f.canary)
		}
		if f.bake < 0 || math.IsNaN(f.bake) || math.IsInf(f.bake, 0) {
			return nil, fmt.Errorf("-bake must be a finite number >= 0, got %g", f.bake)
		}
	default:
		return nil, fmt.Errorf("-model-scope must be %s or %s, got %q", fleet.ScopeCell, fleet.ScopeFleet, f.modelScope)
	}
	if !(f.promoteMargin >= 0 && f.promoteMargin < 1) { // rejects NaN too
		return nil, fmt.Errorf("-promote-margin must be in [0, 1), got %g", f.promoteMargin)
	}
	if !f.elastic && (f.planEvery != 0 || f.targetQoS != 0) {
		return nil, fmt.Errorf("-plan-every and -target-qos require -elastic")
	}
	if f.elastic {
		if f.planEvery < 0 || math.IsNaN(f.planEvery) || math.IsInf(f.planEvery, 0) {
			return nil, fmt.Errorf("-plan-every must be a finite number >= 0, got %g", f.planEvery)
		}
		if f.planEvery >= f.duration {
			return nil, fmt.Errorf("-plan-every %g never fires within the %g second horizon", f.planEvery, f.duration)
		}
		if f.targetQoS != 0 && !(f.targetQoS > 0 && f.targetQoS < 1) { // rejects NaN too
			return nil, fmt.Errorf("-target-qos must be in (0, 1), got %g", f.targetQoS)
		}
	}
	if f.holdout < 0 || f.minRows < 0 {
		return nil, fmt.Errorf("-holdout and -min-rows must be >= 0")
	}
	names, err := fleet.ParseTopologies(f.topologies)
	if err != nil {
		return nil, err
	}
	return names, nil
}

func main() {
	var f flags
	flag.StringVar(&f.topologies, "topology", "flat", "comma-separated host-to-EMC topologies: flat, sharded, sparse")
	flag.StringVar(&f.arrival, "arrival", "poisson:rate=0.05:life=600", `arrival model: "poisson[:rate=R][:life=L]" or "trace"`)
	flag.StringVar(&f.inject, "inject", "", `scenario injections, e.g. "emc-fail@t=500,host-drain@t=800:host=2,surge@t=300:dur=200:x=3,drift@t=2000:cells=2-3:mag=0.6"`)
	flag.Float64Var(&f.duration, "duration", 1000, "simulated horizon per cell (seconds)")
	flag.IntVar(&f.hosts, "hosts", 8, "hosts per cell")
	flag.IntVar(&f.emcs, "emcs", 4, "EMCs per cell")
	flag.IntVar(&f.poolGB, "pool", 512, "pool capacity per cell (GB)")
	flag.IntVar(&f.degree, "degree", 2, "per-host EMC connections under the sparse topology")
	flag.IntVar(&f.cells, "cells", 4, "independent pool groups (engine shards)")
	flag.BoolVar(&f.noPredict, "no-predictions", false, "disable the ML pipeline (all-local baseline)")
	flag.Float64Var(&f.retrainEvery, "retrain-every", 0, "online model retrain cadence in seconds (0 = frozen models)")
	flag.StringVar(&f.modelScope, "model-scope", "cell", `retraining scope: "cell" (per-cell lifecycle) or "fleet" (pooled telemetry, staged canary rollout)`)
	flag.Float64Var(&f.canary, "canary", 0, "fraction of cells a fleet-scoped release reaches first (0 = default 0.25)")
	flag.Float64Var(&f.bake, "bake", 0, "canary bake window in seconds before the promote-or-rollback verdict (0 = 2x retrain cadence)")
	flag.Float64Var(&f.promoteMargin, "promote-margin", 0, "fractional rolling-loss improvement required to promote a challenger (0 = default 5%)")
	flag.IntVar(&f.holdout, "holdout", 0, "rolling holdout window in completed VMs (0 = default)")
	flag.IntVar(&f.minRows, "min-rows", 0, "minimum completed VMs before a challenger trains (0 = default)")
	flag.StringVar(&f.modelsOut, "models", "", "write the versioned model dump (JSON) to this file")
	flag.BoolVar(&f.elastic, "elastic", false, "enable the elastic pool: re-plan each cell's capacity from observed demand at every planning barrier")
	flag.Float64Var(&f.planEvery, "plan-every", 0, "elastic planning cadence in seconds (0 = an eighth of the horizon)")
	flag.Float64Var(&f.targetQoS, "target-qos", 0, "tolerated fraction of time pool demand may exceed capacity (0 = default 0.01)")
	flag.BoolVar(&f.printLog, "log", false, "print the full event log")
	flag.IntVar(&f.workers, "workers", 0, "engine worker pool size (0 = GOMAXPROCS); results are identical for any value")
	flag.Int64Var(&f.seed, "seed", 1, "root seed for every cell stream")
	flag.Parse()

	names, err := validate(f)
	if err != nil {
		cliutil.Fatal("pondfleet", err)
	}

	reports := make([]*pond.FleetReport, 0, len(names))
	for _, name := range names {
		rep, err := pond.RunFleet(context.Background(), pond.FleetOpts{
			Topology:           name,
			PodDegree:          f.degree,
			Hosts:              f.hosts,
			EMCs:               f.emcs,
			PoolGB:             f.poolGB,
			Cells:              f.cells,
			DurationSec:        f.duration,
			Arrival:            f.arrival,
			Inject:             f.inject,
			DisablePredictions: f.noPredict,
			RetrainEverySec:    f.retrainEvery,
			ModelScope:         f.modelScope,
			CanaryFraction:     f.canary,
			BakeWindowSec:      f.bake,
			PromoteMargin:      f.promoteMargin,
			HoldoutWindow:      f.holdout,
			MinTrainRows:       f.minRows,
			CaptureModels:      f.modelsOut != "",
			ElasticPool:        f.elastic,
			PlanEverySec:       f.planEvery,
			TargetQoS:          f.targetQoS,
			Workers:            f.workers,
			Seed:               f.seed,
		})
		if err != nil {
			cliutil.Fatal("pondfleet", err)
		}
		reports = append(reports, rep)
		fmt.Println(rep.Summary)
		if f.retrainEvery > 0 && len(rep.PromotionHistory) > 0 {
			fmt.Println("model lifecycle:")
			for _, line := range rep.PromotionHistory {
				fmt.Printf("  %s\n", line)
			}
		}
		if f.retrainEvery > 0 && len(rep.RolloutHistory) > 0 {
			fmt.Println("staged rollout:")
			for _, line := range rep.RolloutHistory {
				fmt.Printf("  %s\n", line)
			}
		}
		if f.elastic && len(rep.PlanHistory) > 0 {
			fmt.Println("capacity plans:")
			for _, line := range rep.PlanHistory {
				fmt.Printf("  %s\n", line)
			}
		}
		if f.printLog {
			fmt.Print(rep.EventLog)
		}
		fmt.Println()
	}

	if f.modelsOut != "" {
		if err := writeModels(f.modelsOut, names, reports); err != nil {
			cliutil.Fatal("pondfleet", err)
		}
		fmt.Printf("wrote versioned model dump to %s\n", f.modelsOut)
	}

	if len(reports) > 1 {
		fmt.Println("per-topology comparison:")
		printComparison(reports)
	}
}

func printComparison(reports []*pond.FleetReport) {
	fmt.Printf("  %-10s %9s %9s %12s %12s %12s\n",
		"topology", "placed", "rejected", "core-util", "stranded-GB", "blast-vms")
	for _, r := range reports {
		fmt.Printf("  %-10s %9d %9d %11.1f%% %12.1f %12d\n",
			r.Topology, r.Placed, r.Rejected, 100*r.AvgCoreUtil, r.AvgStrandedGB, r.BlastVMs)
	}
}

// modelDump is the -models file schema: per-topology versioned model
// snapshots (per cell under cell scope, the release train under fleet
// scope).
type modelDump struct {
	Topology string            `json:"topology"`
	Cells    []json.RawMessage `json:"cells"`
}

func writeModels(path string, names []string, reports []*pond.FleetReport) error {
	dumps := make([]modelDump, 0, len(reports))
	for i, r := range reports {
		dumps = append(dumps, modelDump{Topology: strings.TrimSpace(names[i]), Cells: r.ModelsJSON})
	}
	data, err := json.MarshalIndent(dumps, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
