// Command pondserve is the live control-plane daemon: it serves fleet
// runs over HTTP, letting clients start simulations, watch their event
// logs stream, and inject operational scenarios — EMC failures, drains,
// surges, drift, resizes — into a running fleet at deterministic safe
// points.
//
//	pondserve -addr :8080 -state /var/lib/pond/checkpoint.json
//
//	curl -X POST localhost:8080/runs -d '{"opts":{"cluster":{"cells":2,"duration_sec":600}}}'
//	curl -X POST localhost:8080/runs/r1/inject -d '{"injection":"emc-fail@t=400:emc=1"}'
//	curl localhost:8080/runs/r1/events
//
// The request bodies are the same grouped configuration pond.FleetOpts
// defines and pondfleet's flags map onto; injections use the same spec
// strings as -inject, with one parser and one validation path behind
// all three. A served run's event log is byte-identical to the
// equivalent batch pondfleet run with the live injections folded into
// -inject — the determinism contract extends across the process
// boundary.
//
// On SIGTERM or SIGINT the daemon parks every run at a safe point
// (which closes attached event streams), drains in-flight requests,
// and checkpoints each run's
// reproduce-from-scratch configuration to -state; a fresh daemon
// pointed at the same file re-runs them to the same byte-identical
// reports. -check probes a running daemon's /healthz and exits 0/1 —
// the Dockerfile HEALTHCHECK hook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pond/internal/serve"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		state = flag.String("state", "", "checkpoint file written on shutdown and restored on start (empty = stateless)")
		check = flag.Bool("check", false, "probe /healthz of a daemon on -addr and exit 0 (healthy) or 1")
	)
	flag.Parse()

	if *check {
		os.Exit(probe(*addr))
	}

	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv, err := serve.New(serve.Config{StatePath: *state, Log: log})
	if err != nil {
		log.Error("startup failed", "err", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "state", *state)
		errc <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		log.Error("listener failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
	}

	// Park first: runs reach a terminal state and broadcast, so attached
	// /events followers EOF and the HTTP drain below finishes promptly
	// instead of burning its timeout waiting on live streams. The
	// checkpoint is written last, once no handler can still be mutating a
	// run's config.
	srv.Park()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("http shutdown", "err", err)
	}
	if err := srv.Checkpoint(); err != nil {
		log.Error("checkpoint failed", "err", err)
		os.Exit(1)
	}
	log.Info("stopped")
}

// probe GETs /healthz on addr, printing the verdict for container
// logs. A bare ":8080" addr probes localhost.
func probe(addr string) int {
	if strings.HasPrefix(addr, ":") {
		addr = "localhost" + addr
	}
	client := &http.Client{Timeout: 3 * time.Second}
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		fmt.Fprintf(os.Stderr, "unhealthy: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "unhealthy: status %d\n", resp.StatusCode)
		return 1
	}
	fmt.Println("healthy")
	return 0
}
