// Command pondserve is the live control-plane daemon: it serves fleet
// runs over HTTP, letting clients start simulations, watch their event
// logs stream, and inject operational scenarios — EMC failures, drains,
// surges, drift, resizes — into a running fleet at deterministic safe
// points.
//
//	pondserve -addr :8080 -state /var/lib/pond/checkpoint.json
//
//	curl -X POST localhost:8080/runs -d '{"opts":{"cluster":{"cells":2,"duration_sec":600}}}'
//	curl -X POST localhost:8080/runs/r1/inject -d '{"injection":"emc-fail@t=400:emc=1"}'
//	curl localhost:8080/runs/r1/events
//	curl localhost:8080/metrics
//
// The request bodies are the same grouped configuration pond.FleetOpts
// defines and pondfleet's flags map onto; injections use the same spec
// strings as -inject, with one parser and one validation path behind
// all three. A served run's event log is byte-identical to the
// equivalent batch pondfleet run with the live injections folded into
// -inject — the determinism contract extends across the process
// boundary.
//
// Every flag can also come from the environment as PONDSERVE_<FLAG>
// (dashes become underscores: PONDSERVE_ADDR, PONDSERVE_STATE or its
// alias PONDSERVE_CHECKPOINT, PONDSERVE_ADMIN_ADDR, ...). Flags given
// on the command line always win over the environment.
//
// GET /metrics serves Prometheus-format process and per-run gauges.
// -admin-addr opens a second listener carrying /metrics plus the
// net/http/pprof profiling handlers; the profiling surface stays off
// the API listener so exposing the API never exposes pprof.
//
// On SIGTERM or SIGINT the daemon parks every run at a safe point
// (which closes attached event streams), drains in-flight requests,
// and checkpoints each run's
// reproduce-from-scratch configuration to -state; a fresh daemon
// pointed at the same file re-runs them to the same byte-identical
// reports. -check probes a running daemon's /healthz and exits 0/1 —
// the Dockerfile HEALTHCHECK hook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pond/internal/cliutil"
	"pond/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		adminAddr  = flag.String("admin-addr", "", "admin listen address serving /metrics and net/http/pprof (empty = no admin listener, no pprof)")
		state      = flag.String("state", "", "checkpoint file written on shutdown and restored on start (empty = stateless)")
		retainDone = flag.Int("retain-done", 0, "keep at most this many terminal runs, evicting oldest-finished first (0 = keep all)")
		retainAge  = flag.Duration("retain-age", 0, "evict terminal runs finished longer ago than this, e.g. 24h (0 = keep forever)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (debug includes per-slice phase spans)")
		check      = flag.Bool("check", false, "probe /healthz of a daemon on -addr and exit 0 (healthy) or 1")
	)
	flag.Parse()
	if err := cliutil.ApplyEnv(flag.CommandLine, "PONDSERVE", map[string]string{"CHECKPOINT": "state"}); err != nil {
		fmt.Fprintf(os.Stderr, "pondserve: %v\n", err)
		os.Exit(2)
	}

	if *check {
		os.Exit(probe(*addr))
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "pondserve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	log := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	srv, err := serve.New(serve.Config{
		StatePath:  *state,
		Log:        log,
		RetainDone: *retainDone,
		RetainAge:  *retainAge,
	})
	if err != nil {
		log.Error("startup failed", "err", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 2)
	go func() {
		log.Info("listening", "addr", *addr, "state", *state)
		errc <- httpSrv.ListenAndServe()
	}()
	var adminSrv *http.Server
	if *adminAddr != "" {
		adminSrv = &http.Server{Addr: *adminAddr, Handler: adminHandler(srv)}
		go func() {
			log.Info("admin listening", "addr", *adminAddr)
			errc <- adminSrv.ListenAndServe()
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		log.Error("listener failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
	}

	// Park first: runs reach a terminal state and broadcast, so attached
	// /events followers EOF and the HTTP drain below finishes promptly
	// instead of burning its timeout waiting on live streams. The
	// checkpoint is written last, once no handler can still be mutating a
	// run's config.
	srv.Park()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("http shutdown", "err", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Error("admin shutdown", "err", err)
		}
	}
	if err := srv.Checkpoint(); err != nil {
		log.Error("checkpoint failed", "err", err)
		os.Exit(1)
	}
	log.Info("stopped")
}

// adminHandler is the opt-in operator surface: the same Prometheus
// exposition as the API's /metrics, plus the pprof profile handlers.
// pprof is registered here explicitly rather than via the package's
// DefaultServeMux side effect, so nothing leaks onto the API listener.
func adminHandler(srv *serve.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", srv.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// probe GETs /healthz on addr, printing the verdict for container
// logs. A bare ":8080" addr probes localhost.
func probe(addr string) int {
	if strings.HasPrefix(addr, ":") {
		addr = "localhost" + addr
	}
	client := &http.Client{Timeout: 3 * time.Second}
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		fmt.Fprintf(os.Stderr, "unhealthy: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "unhealthy: status %d\n", resp.StatusCode)
		return 1
	}
	fmt.Println("healthy")
	return 0
}
