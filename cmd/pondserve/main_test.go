package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestMain lets the test binary stand in for the pondserve binary, so
// the daemon tests below run the real main() without a separate build
// step.
func TestMain(m *testing.M) {
	if os.Getenv("PONDSERVE_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// freeAddr reserves a loopback port for the daemon under test.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches main() as a subprocess and waits for /healthz.
func startDaemon(t *testing.T, addr, state string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-addr", addr, "-state", state)
	cmd.Env = append(os.Environ(), "PONDSERVE_RUN_MAIN=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatal("daemon never became healthy")
	return nil
}

type snapshot struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Report *struct {
		Summary   string `json:"summary"`
		LogSHA256 string `json:"log_sha256"`
	} `json:"report"`
}

func getSnapshot(t *testing.T, addr, id string) snapshot {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/runs/%s", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/%s: status %d", id, resp.StatusCode)
	}
	var s snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

func waitDone(t *testing.T, addr, id string) snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s := getSnapshot(t, addr, id)
		if s.State == "done" {
			return s
		}
		if s.State == "failed" {
			t.Fatalf("run %s failed: %s", id, s.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("run %s never completed", id)
	return snapshot{}
}

// TestSIGTERMCheckpointAndRestore is the graceful-shutdown acceptance
// test: run a simulation to completion, SIGTERM the daemon, assert the
// checkpoint file was written, then boot a fresh daemon on the same
// state file and assert it serves the completed run's report with the
// identical event-log hash.
func TestSIGTERMCheckpointAndRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round-trips are full-tier")
	}
	state := filepath.Join(t.TempDir(), "checkpoint.json")
	addr := freeAddr(t)
	cmd := startDaemon(t, addr, state)

	body := []byte(`{"opts": {
		"cluster": {"hosts": 4, "emcs": 4, "pool_gb": 64, "cells": 2, "duration_sec": 300},
		"arrival": {"process": "poisson", "rate_per_sec": 0.1, "mean_lifetime_sec": 150},
		"model": {"disabled": true}
	}}`)
	resp, err := http.Post("http://"+addr+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created snapshot
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start status %d", resp.StatusCode)
	}
	first := waitDone(t, addr, created.ID)
	if first.Report == nil || first.Report.LogSHA256 == "" {
		t.Fatalf("first daemon served no report: %+v", first)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly: %v", err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}

	addr2 := freeAddr(t)
	cmd2 := startDaemon(t, addr2, state)
	defer func() {
		_ = cmd2.Process.Signal(syscall.SIGTERM)
		_ = cmd2.Wait()
	}()
	second := waitDone(t, addr2, created.ID)
	if second.Report == nil {
		t.Fatalf("restored daemon served no report: %+v", second)
	}
	if second.Report.LogSHA256 != first.Report.LogSHA256 {
		t.Fatalf("restored report sha %s != original %s", second.Report.LogSHA256, first.Report.LogSHA256)
	}
	if second.Report.Summary != first.Report.Summary {
		t.Fatal("restored summary differs from the original")
	}
}

// TestCheckProbe exercises the -check health probe both ways.
func TestCheckProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round-trips are full-tier")
	}
	addr := freeAddr(t)
	cmd := startDaemon(t, addr, "")
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_ = cmd.Wait()
	}()

	probe := exec.Command(os.Args[0], "-check", "-addr", addr)
	probe.Env = append(os.Environ(), "PONDSERVE_RUN_MAIN=1")
	if out, err := probe.CombinedOutput(); err != nil {
		t.Fatalf("healthy probe failed: %v\n%s", err, out)
	}

	dead := exec.Command(os.Args[0], "-check", "-addr", freeAddr(t))
	dead.Env = append(os.Environ(), "PONDSERVE_RUN_MAIN=1")
	if err := dead.Run(); err == nil {
		t.Fatal("probe of a dead address succeeded")
	}
}
