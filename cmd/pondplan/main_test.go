package main

import (
	"context"
	"strings"
	"testing"

	"pond/internal/fleet"
)

func defaults() flags {
	return flags{
		topologies: "flat",
		arrival:    "poisson:rate=0.2:life=600",
		duration:   2000,
		hosts:      8,
		emcs:       4,
		poolGB:     512,
		degree:     2,
		cells:      4,
		targetQoS:  0.01,
		steps:      8,
		seed:       1,
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flags)
		wantErr string // substring; empty = must pass
	}{
		{"defaults", func(f *flags) {}, ""},
		{"topology-list", func(f *flags) { f.topologies = "flat,sharded,sparse" }, ""},
		{"negative-workers", func(f *flags) { f.workers = -1 }, "-workers"},
		{"zero-seed", func(f *flags) { f.seed = 0 }, "-seed"},
		{"negative-duration", func(f *flags) { f.duration = -1 }, "-duration"},
		{"nan-duration", func(f *flags) { f.duration = nan() }, "-duration"},
		{"zero-cells", func(f *flags) { f.cells = 0 }, "-cells"},
		{"zero-pool", func(f *flags) { f.poolGB = 0 }, "-pool"},
		{"qos-zero", func(f *flags) { f.targetQoS = 0 }, "-target-qos"},
		{"qos-one", func(f *flags) { f.targetQoS = 1 }, "-target-qos"},
		{"qos-nan", func(f *flags) { f.targetQoS = nan() }, "-target-qos"},
		{"zero-steps", func(f *flags) { f.steps = 0 }, "-steps"},
		{"bad-topology", func(f *flags) { f.topologies = "moebius" }, "unknown topology"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := defaults()
			tc.mutate(&f)
			names, err := validate(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(names) == 0 {
					t.Fatal("no topologies returned")
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error mentioning %q, got none", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRenderPlanProducesWaterfall(t *testing.T) {
	f := defaults()
	f.duration = 400
	f.cells = 2
	f.hosts = 4
	f.poolGB = 64
	arrival, err := fleet.ParseArrival(f.arrival)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(context.Background(), fleet.Options{
		Topology:    "flat",
		Hosts:       f.hosts,
		EMCs:        f.emcs,
		PoolGB:      f.poolGB,
		Cells:       f.cells,
		DurationSec: f.duration,
		Arrival:     arrival,
		Predictions: true,
		Seed:        f.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := renderPlan("flat", f, rep)
	for _, want := range []string{
		"telemetry:", "capacity plan: topology=flat",
		"pool-GB", "chosen:", "fleet DRAM saved",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan output missing %q:\n%s", want, out)
		}
	}
	// The static pool always heads the waterfall at zero savings.
	if !strings.Contains(out, "      64") {
		t.Fatalf("waterfall missing the static row:\n%s", out)
	}
}
