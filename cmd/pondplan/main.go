// Command pondplan is the offline capacity planner: it runs a
// telemetry-collection fleet simulation per topology at the static pool
// size, folds each cell's time-weighted pool-demand distribution into
// the internal/capacity planner, and prints the Pond-style DRAM-savings
// waterfall — candidate pool sizes with their QoS risk — selecting the
// minimal configuration that meets the target (§7's right-sizing
// argument, driven by observed demand instead of a fixed SKU).
//
//	pondplan
//	pondplan -topology flat,sharded,sparse -target-qos 0.01
//	pondplan -arrival trace -duration 4000 -pool 256
//
// The chosen size is what the elastic controller converges toward when
// the same workload runs under `pondfleet -elastic`; the waterfall shows
// how much QoS each further GB of shrink would cost. Deterministic for a
// fixed seed and byte-identical for any -workers value.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"

	"pond/internal/capacity"
	"pond/internal/cliutil"
	"pond/internal/fleet"
)

// flags carries every pondplan flag value so validation is testable
// without exec'ing the binary.
type flags struct {
	topologies string
	arrival    string
	duration   float64
	hosts      int
	emcs       int
	poolGB     int
	degree     int
	cells      int
	noPredict  bool
	targetQoS  float64
	steps      int
	workers    int
	seed       int64
}

// validate rejects bad flag combinations with one readable error and
// returns the parsed topology list on success.
func validate(f flags) ([]string, error) {
	if err := cliutil.ValidateWorkers(f.workers); err != nil {
		return nil, err
	}
	if err := cliutil.ValidateSeed(f.seed); err != nil {
		return nil, err
	}
	if f.duration <= 0 || math.IsNaN(f.duration) || math.IsInf(f.duration, 0) {
		return nil, fmt.Errorf("-duration must be a positive number, got %g", f.duration)
	}
	if f.cells <= 0 {
		return nil, fmt.Errorf("-cells must be positive, got %d", f.cells)
	}
	if f.poolGB <= 0 {
		return nil, fmt.Errorf("-pool must be positive, got %d", f.poolGB)
	}
	if !(f.targetQoS > 0 && f.targetQoS < 1) { // rejects NaN too
		return nil, fmt.Errorf("-target-qos must be in (0, 1), got %g", f.targetQoS)
	}
	if f.steps <= 0 {
		return nil, fmt.Errorf("-steps must be positive, got %d", f.steps)
	}
	return fleet.ParseTopologies(f.topologies)
}

func main() {
	var f flags
	flag.StringVar(&f.topologies, "topology", "flat", "comma-separated host-to-EMC topologies: flat, sharded, sparse")
	flag.StringVar(&f.arrival, "arrival", "poisson:rate=0.2:life=600", `arrival model: "poisson[:rate=R][:life=L]" or "trace"`)
	flag.Float64Var(&f.duration, "duration", 2000, "simulated telemetry horizon per cell (seconds)")
	flag.IntVar(&f.hosts, "hosts", 8, "hosts per cell")
	flag.IntVar(&f.emcs, "emcs", 4, "EMCs per cell")
	flag.IntVar(&f.poolGB, "pool", 512, "static pool capacity per cell (GB) — the provisioning baseline")
	flag.IntVar(&f.degree, "degree", 2, "per-host EMC connections under the sparse topology")
	flag.IntVar(&f.cells, "cells", 4, "independent pool groups (engine shards)")
	flag.BoolVar(&f.noPredict, "no-predictions", false, "disable the ML pipeline during telemetry collection")
	flag.Float64Var(&f.targetQoS, "target-qos", 0.01, "tolerated fraction of time pool demand may exceed the planned pool")
	flag.IntVar(&f.steps, "steps", 8, "waterfall rows between the static pool and the floor")
	flag.IntVar(&f.workers, "workers", 0, "engine worker pool size (0 = GOMAXPROCS); results are identical for any value")
	flag.Int64Var(&f.seed, "seed", 1, "root seed for every cell stream")
	flag.Parse()

	names, err := validate(f)
	if err != nil {
		cliutil.Fatal("pondplan", err)
	}

	arrival, err := fleet.ParseArrival(f.arrival)
	if err != nil {
		cliutil.Fatal("pondplan", err)
	}

	for _, name := range names {
		rep, err := fleet.Run(context.Background(), fleet.Options{
			Topology:    name,
			PodDegree:   f.degree,
			Hosts:       f.hosts,
			EMCs:        f.emcs,
			PoolGB:      f.poolGB,
			Cells:       f.cells,
			DurationSec: f.duration,
			Arrival:     arrival,
			Predictions: !f.noPredict,
			Workers:     f.workers,
			Seed:        f.seed,
		})
		if err != nil {
			cliutil.Fatal("pondplan", err)
		}
		fmt.Println(renderPlan(name, f, rep))
		fmt.Println()
	}
}

// renderPlan runs the waterfall over one telemetry run and renders the
// table with its context lines.
func renderPlan(name string, f flags, rep *fleet.Report) string {
	demands := make([]*capacity.Demand, 0, len(rep.Cells))
	var untouched50, untouched90 float64
	for _, c := range rep.Cells {
		demands = append(demands, c.Demand)
		untouched50 += c.UntouchedP50 / float64(len(rep.Cells))
		untouched90 += c.UntouchedP90 / float64(len(rep.Cells))
	}
	// The savings baseline is what the telemetry run actually
	// provisioned (the per-EMC share rounds down), not the requested
	// -pool figure — savings against capacity that never existed would
	// be phantom.
	staticGB := rep.FinalPoolGB / len(rep.Cells)
	plan := capacity.PlanWaterfall(name, staticGB, demands, capacity.PlanConfig{
		TargetQoS: f.targetQoS,
		MinPoolGB: f.emcs, // one slice per EMC so no pod goes dark
		Steps:     f.steps,
	})
	out := fmt.Sprintf("telemetry: arrival=%s duration=%gs placed=%d rejected=%d "+
		"peak-pool-used=%.0fGB stranded=%.1fGB untouched-p50=%.2f untouched-p90=%.2f\n",
		rep.Options.Arrival, f.duration, rep.Placed, rep.Rejected,
		rep.PeakPoolUsedGB, rep.AvgStrandedGB, untouched50, untouched90)
	return out + plan.Table()
}
