package pond

import (
	"context"
	"encoding/json"
	"fmt"

	"pond/internal/fleet"
)

// FleetReport is the merged outcome of an online fleet run.
type FleetReport struct {
	// Topology echoes the topology that ran.
	Topology string
	// TopologyDesc is the topology's one-line description with its
	// blast-radius summary.
	TopologyDesc string

	// Arrivals, Placed, Rejected, and Departed count VM lifecycle
	// events aggregated across cells: VMs that arrived, were admitted,
	// were turned away with no fitting host, and completed.
	Arrivals, Placed, Rejected, Departed int
	// BlastVMs is the number of VMs lost to injected EMC failures;
	// Migrated counts VMs moved off draining hosts.
	BlastVMs, Migrated int
	// QoSViolations counts departed VMs whose realized slowdown exceeded
	// the PDM; Mitigations those the QoS monitor reconfigured.
	QoSViolations, Mitigations int

	// AvgCoreUtil is the time-weighted scheduled-core fraction.
	AvgCoreUtil float64
	// AvgStrandedGB is the time-weighted stranded memory (§2).
	AvgStrandedGB float64
	// PeakPoolUsedGB is the highest pool usage any cell reached — the
	// demand signal capacity planning sizes against.
	PeakPoolUsedGB float64
	// PoolShare is the GB-weighted share of placed memory on pool DRAM.
	PoolShare float64

	// Capacity loop (meaningful when Capacity.Elastic or a resize
	// injection ran). FinalPoolGB sums the cells' active pool capacity at
	// run end; DRAMSavedGB is the fleet's time-averaged capacity below
	// static provisioning — the Pond §7 savings metric, negative if the
	// pool grew past the static size; Fallbacks counts pool-exhaustion
	// downgrades to all-local placements.
	FinalPoolGB int
	DRAMSavedGB float64
	Fallbacks   int
	// PlanHistory lists every planning-barrier decision in cell order,
	// rendered one per line. Byte-identical for any worker count.
	PlanHistory []string

	// ModelScope echoes the retraining scope that ran ("cell" or
	// "fleet").
	ModelScope string

	// Model lifecycle (populated when predictions run; the counters stay
	// zero unless retraining was enabled). Under fleet scope they
	// describe the release train: retrains, fleet-wide promotions,
	// demotions — and Rollbacks counts challengers the canary bake
	// stopped from ever reaching a non-canary cell.
	Retrains, Promotions, Demotions int
	Rollbacks                       int
	// ChampionVer is the fleet champion release version at run end
	// (fleet scope).
	ChampionVer int
	// PredErrMean is the serving untouched-memory model's mean
	// asymmetric prediction loss over all completed VMs; PredErrFinal
	// the same over the final rolling window — the end-of-run prediction
	// error. InsensErrMean mirrors it for the insensitivity score.
	PredErrMean, PredErrFinal float64
	InsensErrMean             float64
	// PromotionHistory lists every retrain/promote/demote event in cell
	// order, rendered one per line (cell scope).
	PromotionHistory []string
	// RolloutHistory lists the fleet release train's stage transitions —
	// retrain, canary-start, hold, promote, rollback, demote — in order,
	// rendered one per line (fleet scope). Byte-identical for any worker
	// count.
	RolloutHistory []string
	// ModelsJSON is the versioned model dump (one JSON array per cell)
	// when Model.Capture was set.
	ModelsJSON []json.RawMessage

	// EventLog is the full deterministic event log (cell order);
	// LogSHA256 is its hash — identical for every worker count.
	EventLog  string
	LogSHA256 string

	// Summary is the rendered one-screen report.
	Summary string
}

// RunFleet simulates an online Pond fleet: VM arrivals and departures
// flow through the live prediction/QoS control plane against the chosen
// pool topology, with failure scenarios injected mid-run. Cells fan out
// across the parallel engine; the event log and its hash depend only on
// the options and seed, never on worker count. For an incrementally
// driven run with live injections, use StartFleet.
func RunFleet(ctx context.Context, opts FleetOpts) (*FleetReport, error) {
	fo, err := opts.fleetOptions()
	if err != nil {
		return nil, err
	}
	rep, err := fleet.Run(ctx, fo)
	if err != nil {
		return nil, err
	}
	return newFleetReport(rep), nil
}

// newFleetReport maps the internal report to the public form, rendering
// the lifecycle, rollout, and planning histories one line each.
func newFleetReport(rep *fleet.Report) *FleetReport {
	history := make([]string, 0, len(rep.Lifecycle))
	for _, e := range rep.Lifecycle {
		history = append(history, fmt.Sprintf("[c%d t=%.3f] %s", e.Cell, e.AtSec, e))
	}
	rollout := make([]string, 0, len(rep.Rollout))
	for _, e := range rep.Rollout {
		rollout = append(rollout, fmt.Sprintf("[fleet t=%.3f] %s", e.AtSec, e))
	}
	plans := make([]string, 0, len(rep.PlanHistory))
	for _, e := range rep.PlanHistory {
		plans = append(plans, fmt.Sprintf("[c%d t=%.3f] %s", e.Cell, e.AtSec, e))
	}
	return &FleetReport{
		Topology:         rep.Options.Topology,
		TopologyDesc:     rep.TopologyDesc,
		Arrivals:         rep.Arrivals,
		Placed:           rep.Placed,
		Rejected:         rep.Rejected,
		Departed:         rep.Departed,
		BlastVMs:         rep.BlastVMs,
		Migrated:         rep.Migrated,
		QoSViolations:    rep.QoSViolations,
		Mitigations:      rep.Mitigations,
		AvgCoreUtil:      rep.AvgCoreUtil,
		AvgStrandedGB:    rep.AvgStrandedGB,
		PeakPoolUsedGB:   rep.PeakPoolUsedGB,
		PoolShare:        rep.PoolShare,
		FinalPoolGB:      rep.FinalPoolGB,
		DRAMSavedGB:      rep.DRAMSavedGB,
		Fallbacks:        rep.Fallbacks,
		PlanHistory:      plans,
		ModelScope:       rep.Options.ModelScope,
		Retrains:         rep.Retrains,
		Promotions:       rep.Promotions,
		Demotions:        rep.Demotions,
		Rollbacks:        rep.Rollbacks,
		ChampionVer:      rep.ChampionVer,
		PredErrMean:      rep.PredErrMean,
		PredErrFinal:     rep.PredErrFinal,
		InsensErrMean:    rep.InsensErrMean,
		PromotionHistory: history,
		RolloutHistory:   rollout,
		ModelsJSON:       rep.ModelDumps,
		EventLog:         rep.EventLog,
		LogSHA256:        rep.LogSHA256,
		Summary:          rep.String(),
	}
}
