package pond

import (
	"context"

	"pond/internal/fleet"
)

// FleetOpts configures RunFleet, the online fleet simulation. String
// fields use the same specs as the cmd/pondfleet flags; zero values fall
// back to the defaults (flat topology, 4 cells of 8 hosts x 4 EMCs,
// Poisson arrivals, predictions enabled).
type FleetOpts struct {
	// Topology is the host-to-EMC connectivity of every cell: "flat",
	// "sharded", or "sparse" (Octopus-style overlapping pods).
	Topology string
	// PodDegree is the per-host EMC count under "sparse" (default 2).
	PodDegree int

	// Hosts, EMCs, and PoolGB size each cell's pool group.
	Hosts  int
	EMCs   int
	PoolGB int

	// Cells is the number of independent pool groups (engine shards).
	Cells int

	// DurationSec is the simulated horizon.
	DurationSec float64

	// Arrival is the arrival-process spec, e.g. "poisson:rate=0.05:life=600"
	// or "trace" (interarrivals derived from the cluster generator).
	Arrival string

	// Inject is a comma-separated scenario list, e.g.
	// "emc-fail@t=500,host-drain@t=800:host=2,surge@t=300:dur=200:x=3".
	Inject string

	// DisablePredictions turns off the ML scheduling pipeline (the
	// no-pooling baseline).
	DisablePredictions bool

	// Workers bounds the engine worker pool; <= 0 means GOMAXPROCS.
	// Results are byte-identical for every worker count.
	Workers int
	// Seed roots every cell's RNG stream (0 means the default seed).
	Seed int64
}

// FleetReport is the merged outcome of an online fleet run.
type FleetReport struct {
	// Topology echoes the topology that ran, with its blast-radius
	// summary.
	Topology     string
	TopologyDesc string

	// Counters aggregated across cells.
	Arrivals, Placed, Rejected, Departed int
	// BlastVMs is the number of VMs lost to injected EMC failures;
	// Migrated counts VMs moved off draining hosts.
	BlastVMs, Migrated int

	// AvgCoreUtil is the time-weighted scheduled-core fraction;
	// AvgStrandedGB the time-weighted stranded memory (§2); PoolShare
	// the GB-weighted share of placed memory on pool DRAM.
	AvgCoreUtil    float64
	AvgStrandedGB  float64
	PeakPoolUsedGB float64
	PoolShare      float64

	// EventLog is the full deterministic event log (cell order);
	// LogSHA256 is its hash — identical for every worker count.
	EventLog  string
	LogSHA256 string

	// Summary is the rendered one-screen report.
	Summary string
}

// RunFleet simulates an online Pond fleet: VM arrivals and departures
// flow through the live prediction/QoS control plane against the chosen
// pool topology, with failure scenarios injected mid-run. Cells fan out
// across the parallel engine; the event log and its hash depend only on
// the options and seed, never on worker count.
func RunFleet(ctx context.Context, opts FleetOpts) (*FleetReport, error) {
	arr, err := fleet.ParseArrival(opts.Arrival)
	if err != nil {
		return nil, err
	}
	inj, err := fleet.ParseInjections(opts.Inject)
	if err != nil {
		return nil, err
	}
	rep, err := fleet.Run(ctx, fleet.Options{
		Topology:    opts.Topology,
		PodDegree:   opts.PodDegree,
		Hosts:       opts.Hosts,
		EMCs:        opts.EMCs,
		PoolGB:      opts.PoolGB,
		Cells:       opts.Cells,
		DurationSec: opts.DurationSec,
		Arrival:     arr,
		Injections:  inj,
		Predictions: !opts.DisablePredictions,
		Workers:     opts.Workers,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &FleetReport{
		Topology:       rep.Options.Topology,
		TopologyDesc:   rep.TopologyDesc,
		Arrivals:       rep.Arrivals,
		Placed:         rep.Placed,
		Rejected:       rep.Rejected,
		Departed:       rep.Departed,
		BlastVMs:       rep.BlastVMs,
		Migrated:       rep.Migrated,
		AvgCoreUtil:    rep.AvgCoreUtil,
		AvgStrandedGB:  rep.AvgStrandedGB,
		PeakPoolUsedGB: rep.PeakPoolUsedGB,
		PoolShare:      rep.PoolShare,
		EventLog:       rep.EventLog,
		LogSHA256:      rep.LogSHA256,
		Summary:        rep.String(),
	}, nil
}
