package pond

import (
	"context"
	"encoding/json"
	"fmt"

	"pond/internal/fleet"
)

// FleetOpts configures RunFleet, the online fleet simulation. String
// fields use the same specs as the cmd/pondfleet flags; zero values fall
// back to the defaults (flat topology, 4 cells of 8 hosts x 4 EMCs,
// Poisson arrivals, predictions enabled).
type FleetOpts struct {
	// Topology is the host-to-EMC connectivity of every cell: "flat",
	// "sharded", or "sparse" (Octopus-style overlapping pods).
	Topology string
	// PodDegree is the per-host EMC count under "sparse" (default 2).
	PodDegree int

	// Hosts is the number of hypervisor hosts per cell.
	Hosts int
	// EMCs is the number of external memory controllers per cell.
	EMCs int
	// PoolGB is each cell's pool capacity in GB, split evenly across
	// its EMCs.
	PoolGB int

	// Cells is the number of independent pool groups (engine shards).
	Cells int

	// DurationSec is the simulated horizon.
	DurationSec float64

	// Arrival is the arrival-process spec, e.g. "poisson:rate=0.05:life=600"
	// or "trace" (interarrivals derived from the cluster generator).
	Arrival string

	// Inject is a comma-separated scenario list, e.g.
	// "emc-fail@t=500,host-drain@t=800:host=2,surge@t=300:dur=200:x=3,
	// drift@t=2000:mag=0.6".
	Inject string

	// DisablePredictions turns off the ML scheduling pipeline (the
	// no-pooling baseline).
	DisablePredictions bool

	// RetrainEverySec > 0 closes the model-lifecycle loop: models are
	// periodically retrained from live telemetry, shadow-scored against
	// the serving champions on every decision, and hot-swapped on proven
	// improvement (demoting again on regression). Requires predictions.
	RetrainEverySec float64
	// ModelScope selects where retraining happens: "cell" (the default —
	// every cell runs its own champion/challenger lifecycle) or "fleet"
	// (the §5 central pipeline: telemetry pools across cells into one
	// training corpus and a single release train deploys through staged
	// canary rollout — promote to a canary fraction of cells, bake, then
	// fan out fleet-wide or roll the canaries back).
	ModelScope string
	// CanaryFraction is the fraction of cells a fleet-scoped release
	// reaches first, rounded up to at least one cell (0 = default 0.25).
	// Fleet scope only.
	CanaryFraction float64
	// BakeWindowSec is how long a fleet-scoped canary bakes before its
	// promote-or-rollback verdict (0 = twice the retrain cadence). Fleet
	// scope only.
	BakeWindowSec float64
	// PromoteMargin is the fractional rolling-loss improvement a
	// challenger must show to be promoted (0 = default 5%).
	PromoteMargin float64
	// HoldoutWindow is the rolling comparison window in completed VMs
	// (0 = default).
	HoldoutWindow int
	// MinTrainRows is the minimum completed VMs before a challenger is
	// trained (0 = default).
	MinTrainRows int
	// CaptureModels includes each cell's versioned model snapshots in
	// the report (see FleetReport.ModelsJSON).
	CaptureModels bool

	// ElasticPool closes the capacity loop: at every PlanEverySec
	// barrier each cell re-plans its pool size from the demand observed
	// since the previous barrier and grows or shrinks the EMCs through
	// the Pool Manager's elastic APIs. Shrinks retire only free slices —
	// live VMs are never stranded — and the planning decisions land in
	// the deterministic event log (see FleetReport.PlanHistory).
	ElasticPool bool
	// PlanEverySec is the planning-barrier cadence in simulated seconds
	// (0 = an eighth of the horizon). Elastic pool only.
	PlanEverySec float64
	// TargetQoS is the tolerated fraction of time pool demand may exceed
	// capacity, the controller's sizing target (0 = default 0.01).
	// Elastic pool only.
	TargetQoS float64

	// Workers bounds the engine worker pool; <= 0 means GOMAXPROCS.
	// Results are byte-identical for every worker count.
	Workers int
	// Seed roots every cell's RNG stream (0 means the default seed).
	Seed int64
}

// FleetReport is the merged outcome of an online fleet run.
type FleetReport struct {
	// Topology echoes the topology that ran.
	Topology string
	// TopologyDesc is the topology's one-line description with its
	// blast-radius summary.
	TopologyDesc string

	// Arrivals, Placed, Rejected, and Departed count VM lifecycle
	// events aggregated across cells: VMs that arrived, were admitted,
	// were turned away with no fitting host, and completed.
	Arrivals, Placed, Rejected, Departed int
	// BlastVMs is the number of VMs lost to injected EMC failures;
	// Migrated counts VMs moved off draining hosts.
	BlastVMs, Migrated int
	// QoSViolations counts departed VMs whose realized slowdown exceeded
	// the PDM; Mitigations those the QoS monitor reconfigured.
	QoSViolations, Mitigations int

	// AvgCoreUtil is the time-weighted scheduled-core fraction.
	AvgCoreUtil float64
	// AvgStrandedGB is the time-weighted stranded memory (§2).
	AvgStrandedGB float64
	// PeakPoolUsedGB is the highest pool usage any cell reached — the
	// demand signal capacity planning sizes against.
	PeakPoolUsedGB float64
	// PoolShare is the GB-weighted share of placed memory on pool DRAM.
	PoolShare float64

	// Capacity loop (meaningful when ElasticPool or a resize injection
	// ran). FinalPoolGB sums the cells' active pool capacity at run end;
	// DRAMSavedGB is the fleet's time-averaged capacity below static
	// provisioning — the Pond §7 savings metric, negative if the pool
	// grew past the static size; Fallbacks counts pool-exhaustion
	// downgrades to all-local placements.
	FinalPoolGB int
	DRAMSavedGB float64
	Fallbacks   int
	// PlanHistory lists every planning-barrier decision in cell order,
	// rendered one per line. Byte-identical for any worker count.
	PlanHistory []string

	// ModelScope echoes the retraining scope that ran ("cell" or
	// "fleet").
	ModelScope string

	// Model lifecycle (populated when predictions run; the counters stay
	// zero unless retraining was enabled). Under fleet scope they
	// describe the release train: retrains, fleet-wide promotions,
	// demotions — and Rollbacks counts challengers the canary bake
	// stopped from ever reaching a non-canary cell.
	Retrains, Promotions, Demotions int
	Rollbacks                       int
	// ChampionVer is the fleet champion release version at run end
	// (fleet scope).
	ChampionVer int
	// PredErrMean is the serving untouched-memory model's mean
	// asymmetric prediction loss over all completed VMs; PredErrFinal
	// the same over the final rolling window — the end-of-run prediction
	// error. InsensErrMean mirrors it for the insensitivity score.
	PredErrMean, PredErrFinal float64
	InsensErrMean             float64
	// PromotionHistory lists every retrain/promote/demote event in cell
	// order, rendered one per line (cell scope).
	PromotionHistory []string
	// RolloutHistory lists the fleet release train's stage transitions —
	// retrain, canary-start, hold, promote, rollback, demote — in order,
	// rendered one per line (fleet scope). Byte-identical for any worker
	// count.
	RolloutHistory []string
	// ModelsJSON is the versioned model dump (one JSON array per cell)
	// when CaptureModels was set.
	ModelsJSON []json.RawMessage

	// EventLog is the full deterministic event log (cell order);
	// LogSHA256 is its hash — identical for every worker count.
	EventLog  string
	LogSHA256 string

	// Summary is the rendered one-screen report.
	Summary string
}

// RunFleet simulates an online Pond fleet: VM arrivals and departures
// flow through the live prediction/QoS control plane against the chosen
// pool topology, with failure scenarios injected mid-run. Cells fan out
// across the parallel engine; the event log and its hash depend only on
// the options and seed, never on worker count.
func RunFleet(ctx context.Context, opts FleetOpts) (*FleetReport, error) {
	arr, err := fleet.ParseArrival(opts.Arrival)
	if err != nil {
		return nil, err
	}
	inj, err := fleet.ParseInjections(opts.Inject)
	if err != nil {
		return nil, err
	}
	rep, err := fleet.Run(ctx, fleet.Options{
		Topology:        opts.Topology,
		PodDegree:       opts.PodDegree,
		Hosts:           opts.Hosts,
		EMCs:            opts.EMCs,
		PoolGB:          opts.PoolGB,
		Cells:           opts.Cells,
		DurationSec:     opts.DurationSec,
		Arrival:         arr,
		Injections:      inj,
		Predictions:     !opts.DisablePredictions,
		RetrainEverySec: opts.RetrainEverySec,
		ModelScope:      opts.ModelScope,
		CanaryFraction:  opts.CanaryFraction,
		BakeWindowSec:   opts.BakeWindowSec,
		PromoteMargin:   opts.PromoteMargin,
		HoldoutWindow:   opts.HoldoutWindow,
		MinTrainRows:    opts.MinTrainRows,
		CaptureModels:   opts.CaptureModels,
		ElasticPool:     opts.ElasticPool,
		PlanEverySec:    opts.PlanEverySec,
		TargetQoS:       opts.TargetQoS,
		Workers:         opts.Workers,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	history := make([]string, 0, len(rep.Lifecycle))
	for _, e := range rep.Lifecycle {
		history = append(history, fmt.Sprintf("[c%d t=%.3f] %s", e.Cell, e.AtSec, e))
	}
	rollout := make([]string, 0, len(rep.Rollout))
	for _, e := range rep.Rollout {
		rollout = append(rollout, fmt.Sprintf("[fleet t=%.3f] %s", e.AtSec, e))
	}
	plans := make([]string, 0, len(rep.PlanHistory))
	for _, e := range rep.PlanHistory {
		plans = append(plans, fmt.Sprintf("[c%d t=%.3f] %s", e.Cell, e.AtSec, e))
	}
	return &FleetReport{
		Topology:         rep.Options.Topology,
		TopologyDesc:     rep.TopologyDesc,
		Arrivals:         rep.Arrivals,
		Placed:           rep.Placed,
		Rejected:         rep.Rejected,
		Departed:         rep.Departed,
		BlastVMs:         rep.BlastVMs,
		Migrated:         rep.Migrated,
		QoSViolations:    rep.QoSViolations,
		Mitigations:      rep.Mitigations,
		AvgCoreUtil:      rep.AvgCoreUtil,
		AvgStrandedGB:    rep.AvgStrandedGB,
		PeakPoolUsedGB:   rep.PeakPoolUsedGB,
		PoolShare:        rep.PoolShare,
		FinalPoolGB:      rep.FinalPoolGB,
		DRAMSavedGB:      rep.DRAMSavedGB,
		Fallbacks:        rep.Fallbacks,
		PlanHistory:      plans,
		ModelScope:       rep.Options.ModelScope,
		Retrains:         rep.Retrains,
		Promotions:       rep.Promotions,
		Demotions:        rep.Demotions,
		Rollbacks:        rep.Rollbacks,
		ChampionVer:      rep.ChampionVer,
		PredErrMean:      rep.PredErrMean,
		PredErrFinal:     rep.PredErrFinal,
		InsensErrMean:    rep.InsensErrMean,
		PromotionHistory: history,
		RolloutHistory:   rollout,
		ModelsJSON:       rep.ModelDumps,
		EventLog:         rep.EventLog,
		LogSHA256:        rep.LogSHA256,
		Summary:          rep.String(),
	}, nil
}
